// replay.go turns a recorded trace into an authoritative schedule oracle.
// The async engine's control flow is deterministic given its event times, so
// reproducing a run — or re-costing a wall-clock cluster trace through the
// simulator — only requires answering two questions from the recording:
// when did node i's iteration-k training finish, and when (and whether) did
// the payload i sent to j for iteration k arrive. Leave/join events pass
// through as the churn schedule.
//
// Keys are consumed FIFO because the same (node, iteration) can legitimately
// recur: a churned node's superseded train-done still occupies the queue, and
// a rejoining node's neighbors re-send their cached payloads. The engine
// issues lookups in its deterministic processing order, so FIFO pairing
// reproduces the original queue exactly. A Replayer is therefore single-use:
// build a fresh one per replayed run.
package trace

import "fmt"

type trainKey struct{ node, iter int }

type sendKey struct{ from, to, iter int }

type arrivalRec struct {
	time    float64
	dropped bool
}

// Replayer indexes a trace for schedule playback.
type Replayer struct {
	header    Header
	train     map[trainKey][]float64
	arr       map[sendKey][]arrivalRec
	sends     map[sendKey][]bool // recorded per-send dropped flags
	deadlines map[trainKey][]float64
	churn     []Event
	epochs    []Event
}

// NewReplayer validates t and builds the schedule index.
func NewReplayer(t *Trace) (*Replayer, error) {
	if err := Validate(t.Header, t.Events); err != nil {
		return nil, err
	}
	r := &Replayer{
		header:    t.Header,
		train:     make(map[trainKey][]float64),
		arr:       make(map[sendKey][]arrivalRec),
		sends:     make(map[sendKey][]bool),
		deadlines: make(map[trainKey][]float64),
	}
	for _, ev := range t.Events {
		switch ev.Kind {
		case KindTrainDone:
			k := trainKey{ev.Node, ev.Iter}
			r.train[k] = append(r.train[k], ev.Time)
		case KindSend:
			k := sendKey{ev.Node, ev.Peer, ev.Iter}
			r.sends[k] = append(r.sends[k], ev.Dropped)
		case KindArrival:
			// The arrival's subject is the receiver; Peer is the sender.
			k := sendKey{ev.Peer, ev.Node, ev.Iter}
			r.arr[k] = append(r.arr[k], arrivalRec{time: ev.Time, dropped: ev.Dropped})
		case KindDeadline:
			k := trainKey{ev.Node, ev.Iter}
			r.deadlines[k] = append(r.deadlines[k], ev.Time)
		case KindLeave, KindJoin:
			r.churn = append(r.churn, ev)
		case KindEpoch:
			r.epochs = append(r.epochs, ev)
		}
	}
	if len(r.train) == 0 {
		return nil, fmt.Errorf("%w: no train-done events — nothing to replay", ErrCorrupt)
	}
	return r, nil
}

// Header returns the recorded run's description.
func (r *Replayer) Header() Header { return r.header }

// TrainDoneTime consumes and returns the next recorded completion time of
// node's iteration iter. ok is false when the recording holds no (further)
// such event — the caller should skip scheduling (the node left before the
// event mattered) and treat a stalled replay as a config mismatch.
func (r *Replayer) TrainDoneTime(node, iter int) (t float64, ok bool) {
	k := trainKey{node, iter}
	q := r.train[k]
	if len(q) == 0 {
		return 0, false
	}
	r.train[k] = q[1:]
	return q[0], true
}

// NextArrival consumes and returns the next recorded delivery of from's
// iteration-iter payload to to: its arrival time and whether it was dropped
// in flight. ok is false when no (further) delivery was recorded — the
// recorded run ended with the message still in flight, so the replay should
// send without scheduling a delivery.
func (r *Replayer) NextArrival(from, to, iter int) (t float64, dropped, ok bool) {
	k := sendKey{from, to, iter}
	q := r.arr[k]
	if len(q) == 0 {
		return 0, false, false
	}
	r.arr[k] = q[1:]
	return q[0].time, q[0].dropped, true
}

// NextSend consumes and returns the next recorded send of from's
// iteration-iter payload to to: whether that send was dropped in flight. ok
// is false when the trace carries no (further) such send record — possible
// for hand-built traces without derived send events, in which case the
// matching arrival's dropped flag is the fallback.
func (r *Replayer) NextSend(from, to, iter int) (dropped, ok bool) {
	k := sendKey{from, to, iter}
	q := r.sends[k]
	if len(q) == 0 {
		return false, false
	}
	r.sends[k] = q[1:]
	return q[0], true
}

// NextDeadline consumes and returns the next recorded straggler-deadline
// firing for node's iteration iter. ok is false when no (further) deadline
// was recorded for that iteration — the original run aggregated early every
// time (or ended first), so the replay schedules nothing.
func (r *Replayer) NextDeadline(node, iter int) (t float64, ok bool) {
	k := trainKey{node, iter}
	q := r.deadlines[k]
	if len(q) == 0 {
		return 0, false
	}
	r.deadlines[k] = q[1:]
	return q[0], true
}

// Churn returns the recorded leave/join events in trace order.
func (r *Replayer) Churn() []Event { return r.churn }

// Epochs returns the recorded topology-rotation events in trace order. The
// replaying engine schedules them verbatim instead of deriving boundaries
// from its own epoch length, so a wall-clock cluster trace re-executes its
// observed rotation times.
func (r *Replayer) Epochs() []Event { return r.epochs }
