package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// timelineDoc mirrors the Chrome trace-event JSON object format.
type timelineDoc struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	TraceEvents     []json.RawMessage `json:"traceEvents"`
}

// tlRecord decodes one timeline record with the format's required keys kept
// as pointers so their presence is checkable.
type tlRecord struct {
	Name *string        `json:"name"`
	Ph   *string        `json:"ph"`
	Ts   *int64         `json:"ts"`
	Dur  *int64         `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

// mixedKindTrace builds a small trace exercising every event kind.
func mixedKindTrace() *Trace {
	h := Header{Nodes: 3, Rounds: 2, Source: SourceSim, Policy: PolicyBarrier}
	return &Trace{Header: h, Events: []Event{
		{Time: 0.010, Kind: KindTrainDone, Node: 0, Peer: -1, Iter: 0},
		{Time: 0.011, Kind: KindSend, Node: 0, Peer: 1, Iter: 0, Bytes: 100, ModelBytes: 80, MetaBytes: 20},
		{Time: 0.012, Kind: KindTrainDone, Node: 1, Peer: -1, Iter: 0},
		{Time: 0.013, Kind: KindSend, Node: 1, Peer: 0, Iter: 0, Bytes: 120, ModelBytes: 90, MetaBytes: 30},
		{Time: 0.014, Kind: KindArrival, Node: 1, Peer: 0, Iter: 0},
		{Time: 0.015, Kind: KindArrival, Node: 0, Peer: 1, Iter: 0, Dropped: true},
		{Time: 0.016, Kind: KindDeadline, Node: 0, Peer: -1, Iter: 0},
		{Time: 0.017, Kind: KindAggregate, Node: 0, Peer: -1, Iter: 0, LagN: 1, LagMax: 0},
		{Time: 0.018, Kind: KindAggregate, Node: 1, Peer: -1, Iter: 0, LagN: 1},
		{Time: 0.020, Kind: KindEpoch, Node: 0, Peer: -1, Iter: 1},
		{Time: 0.021, Kind: KindLeave, Node: 2, Peer: -1, Iter: 0},
		{Time: 0.025, Kind: KindJoin, Node: 2, Peer: -1, Iter: 1},
	}}
}

// decodeTimeline parses and structurally validates a timeline document:
// every record carries the required keys, X records a non-negative dur.
func decodeTimeline(t *testing.T, buf []byte) []tlRecord {
	t.Helper()
	var doc timelineDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v\n%.400s", err, buf)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	out := make([]tlRecord, 0, len(doc.TraceEvents))
	for i, raw := range doc.TraceEvents {
		var rec tlRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Name == nil || rec.Ph == nil || rec.Ts == nil || rec.Pid == nil || rec.Tid == nil {
			t.Fatalf("record %d lacks a required key (name/ph/ts/pid/tid): %s", i, raw)
		}
		switch *rec.Ph {
		case "X":
			if rec.Dur == nil || *rec.Dur < 0 {
				t.Fatalf("record %d: complete event without non-negative dur: %s", i, raw)
			}
		case "M", "i", "C":
		default:
			t.Fatalf("record %d: unexpected phase %q", i, *rec.Ph)
		}
		out = append(out, rec)
	}
	return out
}

func countByName(recs []tlRecord) map[string]int {
	m := map[string]int{}
	for _, r := range recs {
		m[*r.Name]++
	}
	return m
}

func TestWriteTimelineMixedKinds(t *testing.T) {
	tr := mixedKindTrace()
	for _, bin := range []bool{false, true} {
		var enc bytes.Buffer
		sr, err := NewStreamRecorder(&enc, tr.Header, bin)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range tr.Events {
			sr.Record(ev)
		}
		if err := sr.Close(); err != nil {
			t.Fatal(err)
		}
		reader, err := NewStreamReader(&enc)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		n, err := WriteTimeline(&out, reader)
		if err != nil {
			t.Fatalf("bin=%v: %v", bin, err)
		}
		recs := decodeTimeline(t, out.Bytes())
		if len(recs) != n {
			t.Fatalf("bin=%v: reported %d records, decoded %d", bin, n, len(recs))
		}
		names := countByName(recs)
		// Metadata: process_name + run thread + 3 node threads.
		if names["process_name"] != 1 || names["thread_name"] != 4 {
			t.Fatalf("bin=%v: metadata counts %v", bin, names)
		}
		if names[timelineTrain] != 2 {
			t.Fatalf("bin=%v: train spans = %d, want 2", bin, names[timelineTrain])
		}
		if names[timelineWait] != 2 {
			t.Fatalf("bin=%v: wait spans = %d, want 2", bin, names[timelineWait])
		}
		if names[timelineBytes] != 2 {
			t.Fatalf("bin=%v: byte counter records = %d, want 2", bin, names[timelineBytes])
		}
		if names[timelineDrop] != 1 || names["deadline"] != 1 || names["leave"] != 1 ||
			names["join"] != 1 || names[timelineEpoch] != 1 {
			t.Fatalf("bin=%v: marker counts %v", bin, names)
		}
		// The wait span of node 0 runs train-done (10ms) → aggregate (17ms).
		for _, r := range recs {
			if *r.Name == timelineWait && *r.Tid == 0 {
				if *r.Ts != 10000 || *r.Dur != 7000 {
					t.Fatalf("bin=%v: node-0 wait span ts=%d dur=%d, want 10000/7000", bin, *r.Ts, *r.Dur)
				}
			}
		}
		// The counter series is cumulative.
		var last int64 = -1
		for _, r := range recs {
			if *r.Name != timelineBytes {
				continue
			}
			b := int64(r.Args["bytes"].(float64))
			if b <= last {
				t.Fatalf("bin=%v: byte counter not increasing: %d after %d", bin, b, last)
			}
			last = b
		}
		if last != 220 {
			t.Fatalf("bin=%v: final cumulative bytes = %d, want 220", bin, last)
		}
	}
}

// TestWriteTimelineFileTruncated: a recording cut off mid-write still yields
// a valid, loadable timeline of its readable prefix plus ErrTruncated.
func TestWriteTimelineFileTruncated(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "cut.jtb")
	f, err := os.Create(src)
	if err != nil {
		t.Fatal(err)
	}
	tr := mixedKindTrace()
	sr, err := NewStreamRecorder(f, tr.Header, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events[:4] {
		sr.Record(ev)
	}
	if err := sr.Flush(); err != nil {
		t.Fatal(err)
	}
	// No Close: the footer is missing, as after a mid-run kill.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(dir, "cut.json")
	n, err := WriteTimelineFile(dst, src)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	buf, rerr := os.ReadFile(dst)
	if rerr != nil {
		t.Fatal(rerr)
	}
	recs := decodeTimeline(t, buf)
	if len(recs) != n {
		t.Fatalf("reported %d records, decoded %d", n, len(recs))
	}
	names := countByName(recs)
	if names[timelineTrain] != 2 || names[timelineBytes] != 2 {
		t.Fatalf("prefix conversion counts %v", names)
	}
}

// TestWriteTimelineFileNotATrace: garbage input is a hard error and writes
// nothing.
func TestWriteTimelineFileNotATrace(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "garbage.jtb")
	if err := os.WriteFile(src, []byte("definitely not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteTimelineFile(filepath.Join(dir, "out.json"), src); !errors.Is(err, ErrNotTrace) {
		t.Fatalf("err = %v, want ErrNotTrace", err)
	}
}
