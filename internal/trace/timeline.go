// timeline.go converts an event trace into Chrome trace-event JSON — the
// format Perfetto (ui.perfetto.dev) and chrome://tracing load natively — so a
// recorded run becomes a browsable Gantt chart: one track per node, train and
// barrier-wait spans, churn/deadline/drop markers, epoch boundaries, and a
// cumulative wire-bytes counter series.
//
// The conversion streams: per-event output is emitted as events are read, and
// held state is O(nodes) (one span start and one wait start per node), so a
// 1024-node ext-scale trace converts in constant memory like stats does.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Timeline span/marker names as they appear in Perfetto.
const (
	timelineTrain   = "train"
	timelineWait    = "wait"
	timelineBytes   = "wire bytes"
	timelineEpoch   = "epoch"
	timelineDrop    = "drop"
	timelineProcess = "jwins"
)

// tlEvent is one Chrome trace-event record. The format's required keys for
// every phase are name/ph/ts/pid/tid; complete events ("X") additionally
// carry dur, counters ("C") and instants ("i") their args/scope. Timestamps
// are microseconds.
type tlEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"` // set on every "X" record, even zero-length ones
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`    // instant scope: t(hread) or g(lobal)
	Args map[string]any `json:"args,omitempty"` // never reused: marshaled before the next event
}

const timelinePid = 1

func usec(t float64) int64 { return int64(t * 1e6) }

// durp boxes a span duration, clamping the sub-microsecond negatives a
// cluster clock's granularity can produce.
func durp(d int64) *int64 {
	if d < 0 {
		d = 0
	}
	return &d
}

// WriteTimeline streams the trace read from sr as Chrome trace-event JSON
// into w and returns the number of timeline records written (metadata
// included). A truncated recording converts like stats computes: the output
// covers the readable prefix, the JSON is closed and valid, and the
// ErrTruncated is returned for the caller to warn about.
func WriteTimeline(w io.Writer, sr *StreamReader) (int, error) {
	h := sr.Header()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return 0, err
	}
	written := 0
	emit := func(ev tlEvent) error {
		buf, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if written > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		written++
		return nil
	}

	// Track naming: pid 1 is the run; tid n is node n, tid h.Nodes the
	// run-global track (epochs, byte counter).
	globalTid := h.Nodes
	if err := emit(tlEvent{Name: "process_name", Ph: "M", Pid: timelinePid, Tid: globalTid,
		Args: map[string]any{"name": fmt.Sprintf("%s %s (%d nodes, %s policy)", timelineProcess, h.Source, h.Nodes, h.Policy)}}); err != nil {
		return written, err
	}
	if err := emit(tlEvent{Name: "thread_name", Ph: "M", Pid: timelinePid, Tid: globalTid,
		Args: map[string]any{"name": "run"}}); err != nil {
		return written, err
	}
	for i := 0; i < h.Nodes; i++ {
		if err := emit(tlEvent{Name: "thread_name", Ph: "M", Pid: timelinePid, Tid: i,
			Args: map[string]any{"name": fmt.Sprintf("node %d", i)}}); err != nil {
			return written, err
		}
	}

	// Per-node span state: trainStart is when the node's current training
	// phase began (run start, or its last aggregate); waitStart is its last
	// train-done while a policy wait is open, -1 otherwise.
	trainStart := make([]float64, h.Nodes)
	waitStart := make([]float64, h.Nodes)
	for i := range waitStart {
		waitStart[i] = -1
	}
	var cumBytes int64

	var readErr error
	for {
		ev, err := sr.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				readErr = err
			}
			break
		}
		if ev.Node < 0 || ev.Node >= h.Nodes {
			continue // defensive; Validate normally rejects these upstream
		}
		ts := usec(ev.Time)
		var out tlEvent
		switch ev.Kind {
		case KindTrainDone:
			start := usec(trainStart[ev.Node])
			out = tlEvent{Name: timelineTrain, Ph: "X", Ts: start, Dur: durp(ts - start),
				Pid: timelinePid, Tid: ev.Node, Args: map[string]any{"iter": ev.Iter}}
			waitStart[ev.Node] = ev.Time
		case KindAggregate:
			if waitStart[ev.Node] >= 0 {
				start := usec(waitStart[ev.Node])
				out = tlEvent{Name: timelineWait, Ph: "X", Ts: start, Dur: durp(ts - start),
					Pid: timelinePid, Tid: ev.Node,
					Args: map[string]any{"iter": ev.Iter, "merged": ev.LagN, "lag_max": ev.LagMax}}
				waitStart[ev.Node] = -1
			}
			trainStart[ev.Node] = ev.Time
		case KindSend:
			cumBytes += int64(ev.Bytes)
			out = tlEvent{Name: timelineBytes, Ph: "C", Ts: ts, Pid: timelinePid, Tid: globalTid,
				Args: map[string]any{"bytes": cumBytes}}
		case KindArrival:
			// Deliveries are implicit in the wait spans; only losses are worth
			// a marker.
			if ev.Dropped {
				out = tlEvent{Name: timelineDrop, Ph: "i", Ts: ts, Pid: timelinePid, Tid: ev.Node,
					S: "t", Args: map[string]any{"from": ev.Peer, "iter": ev.Iter}}
			}
		case KindLeave, KindJoin, KindDeadline:
			out = tlEvent{Name: ev.Kind.String(), Ph: "i", Ts: ts, Pid: timelinePid, Tid: ev.Node,
				S: "t", Args: map[string]any{"iter": ev.Iter}}
			if ev.Kind == KindLeave || ev.Kind == KindJoin {
				// Churn resets the node's span state: a leaver's open wait
				// will never close, a joiner's next train starts here.
				trainStart[ev.Node] = ev.Time
				waitStart[ev.Node] = -1
			}
		case KindEpoch:
			out = tlEvent{Name: timelineEpoch, Ph: "i", Ts: ts, Pid: timelinePid, Tid: globalTid,
				S: "g", Args: map[string]any{"epoch": ev.Iter}}
		}
		if out.Ph == "" {
			continue
		}
		if err := emit(out); err != nil {
			return written, err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return written, err
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, readErr
}

// WriteTimelineFile converts the trace at src into Chrome trace-event JSON at
// dst. Truncated sources still produce a valid timeline of the readable
// prefix; the ErrTruncated is returned alongside the record count.
func WriteTimelineFile(dst, src string) (int, error) {
	f, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sr, err := NewStreamReader(f)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", src, err)
	}
	out, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	n, werr := WriteTimeline(out, sr)
	if cerr := out.Close(); werr == nil && cerr != nil {
		werr = cerr
	}
	return n, werr
}
