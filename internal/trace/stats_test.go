package trace

import (
	"math"
	"testing"
)

// TestComputeStatsPerKindCounts covers the per-kind counters for the newer
// event kinds (epoch, deadline) alongside the original six, over a golden
// mixed-kind trace that exercises every kind at least once.
func TestComputeStatsPerKindCounts(t *testing.T) {
	tr := mixedKindTrace()
	s := ComputeStats(tr)

	want := map[Kind]int{
		KindTrainDone: 2,
		KindSend:      2,
		KindArrival:   2,
		KindAggregate: 2,
		KindLeave:     1,
		KindJoin:      1,
		KindEpoch:     1,
		KindDeadline:  1,
	}
	total := 0
	for kind, n := range want {
		if s.ByKind[kind] != n {
			t.Fatalf("ByKind[%s] = %d, want %d (all: %v)", kind, s.ByKind[kind], n, s.ByKind)
		}
		total += n
	}
	if s.Events != total || s.Events != len(tr.Events) {
		t.Fatalf("Events = %d, want %d", s.Events, len(tr.Events))
	}
	if len(s.ByKind) != len(want) {
		t.Fatalf("ByKind has %d kinds, want %d: %v", len(s.ByKind), len(want), s.ByKind)
	}
	if s.Duration != tr.Events[len(tr.Events)-1].Time {
		t.Fatalf("Duration = %v, want last event time %v", s.Duration, tr.Events[len(tr.Events)-1].Time)
	}
	if s.NodesSeen != 3 {
		t.Fatalf("NodesSeen = %d, want 3", s.NodesSeen)
	}
	// The golden ledger: two sends of 100 and 120 bytes (80/90 model,
	// 20/30 meta), one in-flight drop.
	if s.TotalBytes != 220 || s.ModelBytes != 170 || s.MetaBytes != 50 {
		t.Fatalf("ledger (%d,%d,%d), want (220,170,50)", s.TotalBytes, s.ModelBytes, s.MetaBytes)
	}
	if s.Drops != 0 {
		t.Fatalf("Drops = %d, want 0 (the golden drop is an arrival, not a send)", s.Drops)
	}
	if s.StaleMax != 0 || s.StaleMean != 0 {
		t.Fatalf("staleness (%v,%v), want zeros", s.StaleMean, s.StaleMax)
	}
}

// TestComputeStatsEpochDeadlineOnly: a trace of only the newer kinds folds
// cleanly — no NaNs from the empty staleness path, no ledger contribution.
func TestComputeStatsEpochDeadlineOnly(t *testing.T) {
	tr := &Trace{
		Header: Header{Format: FormatName, Version: FormatVersion, Nodes: 4, Rounds: 1, Source: SourceSim, Policy: PolicyDeadline},
		Events: []Event{
			{Time: 0.1, Kind: KindEpoch, Node: 0, Peer: -1, Iter: 1},
			{Time: 0.2, Kind: KindDeadline, Node: 2, Peer: -1, Iter: 0},
			{Time: 0.3, Kind: KindDeadline, Node: 3, Peer: -1, Iter: 0},
			{Time: 0.4, Kind: KindEpoch, Node: 0, Peer: -1, Iter: 2},
		},
	}
	if err := Validate(tr.Header, tr.Events); err != nil {
		t.Fatalf("golden trace invalid: %v", err)
	}
	s := ComputeStats(tr)
	if s.ByKind[KindEpoch] != 2 || s.ByKind[KindDeadline] != 2 {
		t.Fatalf("ByKind = %v, want 2 epochs + 2 deadlines", s.ByKind)
	}
	if s.TotalBytes != 0 || s.Drops != 0 {
		t.Fatalf("ledger should be empty: %+v", s)
	}
	if s.StaleMean != 0 || s.StaleMax != 0 || s.StaleP95 != 0 {
		t.Fatalf("staleness should be zero without aggregations: %+v", s)
	}
	if math.IsNaN(s.StaleP95) {
		t.Fatal("StaleP95 is NaN on an aggregation-free trace")
	}
	// NodesSeen counts distinct subjects: 0 (epoch convention), 2, 3.
	if s.NodesSeen != 3 {
		t.Fatalf("NodesSeen = %d, want 3", s.NodesSeen)
	}
}
