package trace

import (
	"bytes"
	"math"
	"testing"
)

// fuzzSeedTrace is a small but representative trace: every event kind the
// binary layout special-cases (aggregate's trailing LagMean float, send's
// byte counters, the shifted peer field, the dropped flag) plus header meta.
func fuzzSeedTrace() *Trace {
	return &Trace{
		Header: Header{
			Format: FormatName, Version: FormatVersion,
			Nodes: 4, Rounds: 2, Source: SourceSim, Policy: PolicyBarrier,
			Meta: map[string]string{"algo": "jwins", "seed": "7"},
		},
		Events: []Event{
			{Time: 0.5, Kind: KindTrainDone, Node: 0, Peer: -1, Iter: 0},
			{Time: 0.6, Kind: KindSend, Node: 0, Peer: 1, Iter: 0, Bytes: 120, ModelBytes: 100, MetaBytes: 20},
			{Time: 0.6, Kind: KindSend, Node: 0, Peer: 2, Iter: 0, Bytes: 120, ModelBytes: 100, MetaBytes: 20, Dropped: true},
			{Time: 0.7, Kind: KindArrival, Node: 1, Peer: 0, Iter: 0},
			{Time: 0.9, Kind: KindAggregate, Node: 1, Peer: -1, Iter: 0, LagMax: 2, LagMean: 0.5, LagN: 3},
			{Time: 1.0, Kind: KindEpoch, Node: 0, Peer: -1, Iter: 1},
			{Time: 1.1, Kind: KindLeave, Node: 3, Peer: -1, Iter: 1},
			{Time: 1.3, Kind: KindJoin, Node: 3, Peer: -1, Iter: 1},
			{Time: 1.4, Kind: KindDeadline, Node: 2, Peer: -1, Iter: 1},
		},
	}
}

// FuzzTraceRead drives the sniffing trace reader (both encodings) with
// mutated bytes: it must never panic, and any trace it accepts must be
// re-encodable and re-readable with nothing lost — the property record→replay
// tooling depends on when it round-trips recordings through files.
func FuzzTraceRead(f *testing.F) {
	seed := fuzzSeedTrace()
	var bin, jsonl bytes.Buffer
	if err := WriteBinary(&bin, seed); err != nil {
		f.Fatal(err)
	}
	if err := Write(&jsonl, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add(jsonl.Bytes())
	// Structural mutants: truncated footer, bad magic, bad version byte.
	f.Add(bin.Bytes()[:len(bin.Bytes())-2])
	f.Add([]byte("JWTX"))
	f.Add(append([]byte{'J', 'W', 'T', 'R', 99}, bin.Bytes()[5:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// The reader validated every event with the same rules WriteBinary
		// enforces, so an accepted trace that fails to re-encode means the two
		// validation paths drifted apart.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("accepted trace fails to re-encode: %v", err)
		}
		tr2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace fails to read back: %v", err)
		}
		assertHeaderEqual(t, tr.Header, tr2.Header)
		if len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(tr.Events), len(tr2.Events))
		}
		for i := range tr.Events {
			assertEventEqual(t, i, tr.Events[i], tr2.Events[i])
		}
	})
}

func assertHeaderEqual(t *testing.T, a, b Header) {
	t.Helper()
	if a.Format != b.Format || a.Version != b.Version || a.Nodes != b.Nodes ||
		a.Rounds != b.Rounds || a.Source != b.Source || a.Policy != b.Policy {
		t.Fatalf("round trip changed header:\n before %+v\n after  %+v", a, b)
	}
	// Meta survives as a JSON object in both encodings; an empty map and a nil
	// one serialize identically (omitted), so treat them as equal.
	if len(a.Meta) != len(b.Meta) {
		t.Fatalf("round trip changed meta:\n before %v\n after  %v", a.Meta, b.Meta)
	}
	for k, v := range a.Meta {
		if b.Meta[k] != v {
			t.Fatalf("round trip changed meta[%q]: %q -> %q", k, v, b.Meta[k])
		}
	}
}

func assertEventEqual(t *testing.T, i int, a, b Event) {
	t.Helper()
	// Floats compare as bits: NaN LagMean and signed zeros must survive the
	// round trip unchanged, and bit equality is exactly what "unchanged" means
	// for an on-disk format.
	if math.Float64bits(a.Time) != math.Float64bits(b.Time) ||
		a.Kind != b.Kind || a.Node != b.Node || a.Peer != b.Peer || a.Iter != b.Iter ||
		a.Dropped != b.Dropped || a.Bytes != b.Bytes || a.ModelBytes != b.ModelBytes ||
		a.MetaBytes != b.MetaBytes || a.LagMax != b.LagMax || a.LagN != b.LagN {
		t.Fatalf("round trip changed event %d:\n before %+v\n after  %+v", i, a, b)
	}
	// LagMean only travels on aggregate events in the binary layout; a JSONL
	// input can smuggle one onto other kinds, where dropping it is by design.
	if a.Kind == KindAggregate && math.Float64bits(a.LagMean) != math.Float64bits(b.LagMean) {
		t.Fatalf("round trip changed event %d lag mean: %v -> %v", i, a.LagMean, b.LagMean)
	}
}
