package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"path/filepath"
	"testing"
)

// TestStreamRecorderByteIdentical: streaming a trace event by event must
// produce exactly the bytes of the whole-trace writers, in both encodings —
// the property that makes streamed recordings interchangeable with in-memory
// ones for replay and diffing.
func TestStreamRecorderByteIdentical(t *testing.T) {
	src := sampleTrace()
	for _, binary := range []bool{false, true} {
		name := "jsonl"
		if binary {
			name = "binary"
		}
		t.Run(name, func(t *testing.T) {
			var want bytes.Buffer
			var err error
			if binary {
				err = WriteBinary(&want, src)
			} else {
				err = Write(&want, src)
			}
			if err != nil {
				t.Fatal(err)
			}

			var got bytes.Buffer
			sr, err := NewStreamRecorder(&got, src.Header, binary)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range src.Events {
				sr.Record(ev)
			}
			if err := sr.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("streamed bytes differ from %s writer (%d vs %d bytes)", name, got.Len(), want.Len())
			}
		})
	}
}

// TestStreamReaderMatchesRead: the streaming reader must yield exactly the
// events Read returns.
func TestStreamReaderMatchesRead(t *testing.T) {
	src := sampleTrace()
	for _, binary := range []bool{false, true} {
		var buf bytes.Buffer
		var err error
		if binary {
			err = WriteBinary(&buf, src)
		} else {
			err = Write(&buf, src)
		}
		if err != nil {
			t.Fatal(err)
		}
		sr, err := NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if sr.Header().Nodes != src.Header.Nodes {
			t.Fatalf("header nodes %d", sr.Header().Nodes)
		}
		var got []Event
		for {
			ev, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, ev)
		}
		if len(got) != len(src.Events) {
			t.Fatalf("got %d events, want %d", len(got), len(src.Events))
		}
		for i := range got {
			if got[i] != src.Events[i] {
				t.Fatalf("event %d differs: %+v vs %+v", i, got[i], src.Events[i])
			}
		}
	}
}

// TestStreamRecorderTruncation: a recording abandoned mid-write (no Close)
// must read back as ErrTruncated — not ErrCorrupt — in both encodings, and
// ReadStats must still summarize the readable prefix.
func TestStreamRecorderTruncation(t *testing.T) {
	src := sampleTrace()
	const keep = 9
	for _, binary := range []bool{false, true} {
		name := "jsonl"
		if binary {
			name = "binary"
		}
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			sr, err := NewStreamRecorder(&buf, src.Header, binary)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range src.Events[:keep] {
				sr.Record(ev)
			}
			if err := sr.Flush(); err != nil {
				t.Fatal(err)
			}
			// No Close: the footer is missing, as after a mid-run kill.
			if _, err := Read(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrTruncated) {
				t.Fatalf("Read of truncated stream: got %v, want ErrTruncated", err)
			}
			if errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated stream misreported as corrupt")
			}

			h, stats, err := ReadStats(bytes.NewReader(buf.Bytes()))
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("ReadStats: got %v, want ErrTruncated", err)
			}
			if h.Nodes != src.Header.Nodes {
				t.Fatalf("ReadStats header lost: %+v", h)
			}
			if stats.Events != keep {
				t.Fatalf("prefix stats cover %d events, want %d", stats.Events, keep)
			}
		})
	}
}

// TestStreamRecorderCloseIdempotent: Close and Abort must be safe to call in
// any order after finalization — a second Close must not append a second
// footer, Abort after Close must not un-finalize the file, and Close after
// Abort must not graft a footer onto a deliberately truncated recording.
func TestStreamRecorderCloseIdempotent(t *testing.T) {
	src := sampleTrace()
	for _, binary := range []bool{false, true} {
		var buf bytes.Buffer
		sr, err := NewStreamRecorder(&buf, src.Header, binary)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range src.Events {
			sr.Record(ev)
		}
		if err := sr.Close(); err != nil {
			t.Fatal(err)
		}
		closed := buf.Len()
		if err := sr.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if err := sr.Abort(); err != nil {
			t.Fatalf("Abort after Close: %v", err)
		}
		if buf.Len() != closed {
			t.Fatalf("finalized recording grew from %d to %d bytes", closed, buf.Len())
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("finalized recording unreadable after redundant calls: %v", err)
		}
	}

	// Close after Abort: the file must stay truncated.
	var buf bytes.Buffer
	sr, err := NewStreamRecorder(&buf, src.Header, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range src.Events[:3] {
		sr.Record(ev)
	}
	if err := sr.Abort(); err != nil {
		t.Fatal(err)
	}
	aborted := buf.Len()
	if err := sr.Close(); err != nil {
		t.Fatalf("Close after Abort: %v", err)
	}
	if buf.Len() != aborted {
		t.Fatalf("Close after Abort appended %d bytes", buf.Len()-aborted)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrTruncated) {
		t.Fatalf("aborted recording reads as %v, want ErrTruncated", err)
	}
}

// TestStreamRecorderHardTruncation: cutting the byte stream mid-event (the
// other way a kill can land) must also be ErrTruncated.
func TestStreamRecorderHardTruncation(t *testing.T) {
	src := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, src); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-7] // inside the last event/footer
	if _, err := Read(bytes.NewReader(cut)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
}

// TestStreamRecorderSetRounds: the padded in-place header rewrite of
// early-stopped runs must survive a file round trip.
func TestStreamRecorderSetRounds(t *testing.T) {
	src := sampleTrace()
	for _, ext := range []string{".jsonl", BinaryExt} {
		path := filepath.Join(t.TempDir(), "run"+ext)
		sr, err := NewStreamRecorderFile(path, src.Header)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range src.Events {
			sr.Record(ev)
		}
		sr.SetRounds(1)
		if err := sr.Close(); err != nil {
			t.Fatal(err)
		}
		tr, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if tr.Header.Rounds != 1 {
			t.Fatalf("%s: header rounds %d after SetRounds(1)", path, tr.Header.Rounds)
		}
		if len(tr.Events) != len(src.Events) {
			t.Fatalf("%s: %d events, want %d", path, len(tr.Events), len(src.Events))
		}
	}
}

// TestStreamRecorderSetRoundsNonSeekable: on a plain writer the rewrite is
// impossible; Close must report it rather than leave a misleading header.
func TestStreamRecorderSetRoundsNonSeekable(t *testing.T) {
	var buf bytes.Buffer
	sr, err := NewStreamRecorder(&buf, sampleTrace().Header, true)
	if err != nil {
		t.Fatal(err)
	}
	sr.Record(sampleTrace().Events[0])
	sr.SetRounds(1)
	if err := sr.Close(); err == nil {
		t.Fatal("Close accepted a SetRounds rewrite on a non-seekable destination")
	}
}

// TestStreamRecorderValidates: an invalid event must stick as the recording
// error and surface at Close.
func TestStreamRecorderValidates(t *testing.T) {
	var buf bytes.Buffer
	sr, err := NewStreamRecorder(&buf, sampleTrace().Header, true)
	if err != nil {
		t.Fatal(err)
	}
	sr.Record(Event{Time: 1, Kind: KindTrainDone, Node: 99, Peer: -1}) // node out of range
	if sr.Err() == nil {
		t.Fatal("invalid event accepted")
	}
	if err := sr.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Close: got %v, want ErrCorrupt", err)
	}
}

// TestReadStatsMatchesComputeStats: the streaming stats must equal the
// in-memory ones.
func TestReadStatsMatchesComputeStats(t *testing.T) {
	src := sampleTrace()
	want := ComputeStats(src)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, src); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events != want.Events || got.TotalBytes != want.TotalBytes ||
		got.Drops != want.Drops || got.NodesSeen != want.NodesSeen ||
		got.Duration != want.Duration || got.StaleMax != want.StaleMax ||
		math.Abs(got.StaleMean-want.StaleMean) > 1e-12 {
		t.Fatalf("streaming stats %+v differ from %+v", got, want)
	}
	for k, n := range want.ByKind {
		if got.ByKind[k] != n {
			t.Fatalf("kind %v: %d vs %d", k, got.ByKind[k], n)
		}
	}
}

// TestCompareReadersMatchesCompare: the streaming diff must equal the
// in-memory one, including on traces that genuinely differ.
func TestCompareReadersMatchesCompare(t *testing.T) {
	a := sampleTrace()
	b := sampleTrace()
	// Perturb B: shift one time (within order), drop one event, add one.
	b.Events[5].Time += 0.0005
	b.Events = append(b.Events[:2], b.Events[3:]...)
	b.Events = append(b.Events, Event{Time: 0.9, Kind: KindTrainDone, Node: 2, Peer: -1, Iter: 1})
	want := Compare(a, b)

	var ab, bb bytes.Buffer
	if err := WriteBinary(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bb, b); err != nil {
		t.Fatal(err)
	}
	ra, err := NewStreamReader(&ab)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewStreamReader(&bb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CompareReaders(ra, rb)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streaming diff %+v differs from %+v", got, want)
	}
}
