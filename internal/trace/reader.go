// reader.go parses traces back, sniffing the encoding from the first bytes
// and validating strictly: a wrong magic/format is ErrNotTrace, a wrong
// version ErrVersion, a missing or short footer ErrTruncated, and anything
// structurally invalid (unknown kinds, range violations, time regressions,
// footer count mismatches) ErrCorrupt. The whole-trace readers here are thin
// loops over StreamReader (stream.go), which tools can use directly to
// inspect cluster-scale traces without materializing the event slice.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// maxHeaderLen bounds the binary header's declared JSON length so corrupt
// length prefixes cannot trigger huge allocations.
const maxHeaderLen = 1 << 20

// Read parses a trace in either encoding and validates it fully.
func Read(r io.Reader) (*Trace, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Header: sr.Header()}
	for {
		ev, err := sr.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Events = append(t.Events, ev)
	}
}

// ReadFile reads and validates the trace at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// ReadStats streams a trace, computing its Stats without materializing the
// event slice — the way to inspect 1024-node or cluster traces on small
// machines (retained state: O(nodes) counters plus one float per aggregate
// event for the exact staleness P95). On ErrTruncated the stats of the
// readable prefix are returned alongside the error, so tools can degrade
// gracefully on recordings cut off mid-write.
func ReadStats(r io.Reader) (Header, Stats, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return Header{}, Stats{}, err
	}
	var acc statsAccum
	acc.init()
	for {
		ev, err := sr.Next()
		if err == io.EOF {
			return sr.Header(), acc.finish(), nil
		}
		if err != nil {
			return sr.Header(), acc.finish(), err
		}
		acc.add(&ev)
	}
}

// ReadStatsFile is ReadStats over a file.
func ReadStatsFile(path string) (Header, Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, Stats{}, err
	}
	defer f.Close()
	h, s, rerr := ReadStats(f)
	if rerr != nil && !errors.Is(rerr, ErrTruncated) {
		return h, s, fmt.Errorf("%s: %w", path, rerr)
	}
	return h, s, rerr
}

// readBinaryEvent decodes one binary event body (after its kind byte).
func readBinaryEvent(br byteAndFullReader, kind Kind) (Event, error) {
	ev := Event{Kind: kind}
	if !kind.Valid() {
		return ev, fmt.Errorf("%w: unknown event kind %d", ErrCorrupt, uint8(kind))
	}
	flags, err := br.ReadByte()
	if err != nil {
		return ev, truncOr(err, "event flags")
	}
	ev.Dropped = flags&1 != 0
	var tb [8]byte
	if _, err := io.ReadFull(br, tb[:]); err != nil {
		return ev, truncOr(err, "event time")
	}
	ev.Time = math.Float64frombits(binary.LittleEndian.Uint64(tb[:]))
	fields := [8]*int{&ev.Node, &ev.Peer, &ev.Iter, &ev.Bytes, &ev.ModelBytes, &ev.MetaBytes, &ev.LagMax, &ev.LagN}
	for i, dst := range fields {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return ev, truncOr(err, "event field")
		}
		if v > math.MaxInt32 {
			return ev, fmt.Errorf("%w: event field %d overflows", ErrCorrupt, i)
		}
		*dst = int(v)
	}
	ev.Peer-- // stored shifted by one so -1 packs as zero
	if kind == KindAggregate {
		if _, err := io.ReadFull(br, tb[:]); err != nil {
			return ev, truncOr(err, "lag mean")
		}
		ev.LagMean = math.Float64frombits(binary.LittleEndian.Uint64(tb[:]))
	}
	return ev, nil
}

// byteAndFullReader is the reader subset readBinaryEvent needs.
type byteAndFullReader interface {
	io.Reader
	io.ByteReader
}

// truncOr maps unexpected EOFs to ErrTruncated and everything else to
// ErrCorrupt, annotated with what was being read.
func truncOr(err error, what string) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: mid %s", ErrTruncated, what)
	}
	return fmt.Errorf("%w: reading %s: %v", ErrCorrupt, what, err)
}
