// reader.go parses traces back, sniffing the encoding from the first bytes
// and validating strictly: a wrong magic/format is ErrNotTrace, a wrong
// version ErrVersion, a missing or short footer ErrTruncated, and anything
// structurally invalid (unknown kinds, range violations, time regressions,
// footer count mismatches) ErrCorrupt.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// maxHeaderLen bounds the binary header's declared JSON length so corrupt
// length prefixes cannot trigger huge allocations.
const maxHeaderLen = 1 << 20

// Read parses a trace in either encoding and validates it fully.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("%w: empty input", ErrNotTrace)
	}
	var t *Trace
	switch first[0] {
	case binaryMagic[0]:
		t, err = readBinary(br)
	case '{':
		t, err = readJSONL(br)
	default:
		return nil, fmt.Errorf("%w: unrecognized leading byte %q", ErrNotTrace, first[0])
	}
	if err != nil {
		return nil, err
	}
	if err := Validate(t.Header, t.Events); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadFile reads and validates the trace at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

func readJSONL(br *bufio.Reader) (*Trace, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: no header line", ErrNotTrace)
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrNotTrace, err)
	}
	if h.Format != FormatName {
		return nil, fmt.Errorf("%w: header format %q", ErrNotTrace, h.Format)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("%w: %d (reader supports %d)", ErrVersion, h.Version, FormatVersion)
	}
	t := &Trace{Header: h}
	// Streaming parse with a single deferred parse error: an unparsable
	// line is corruption if anything follows it, but a file cut off
	// mid-write (ErrTruncated) if it is the last line before EOF.
	sawFooter := false
	var pendingErr error
	line := 1
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		if sawFooter {
			return nil, fmt.Errorf("%w: line %d: content after footer", ErrCorrupt, line)
		}
		var f footer
		if err := json.Unmarshal(raw, &f); err == nil && f.End {
			if f.Events != len(t.Events) {
				return nil, fmt.Errorf("%w: footer declares %d events, read %d", ErrCorrupt, f.Events, len(t.Events))
			}
			sawFooter = true
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			pendingErr = fmt.Errorf("%w: line %d: %v", ErrCorrupt, line, err)
			continue
		}
		t.Events = append(t.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if pendingErr != nil {
		// The unparsable line was the last one: a mid-write cut-off.
		return nil, fmt.Errorf("%w: last line unparsable after %d events", ErrTruncated, len(t.Events))
	}
	if !sawFooter {
		return nil, fmt.Errorf("%w: footer missing after %d events", ErrTruncated, len(t.Events))
	}
	return t, nil
}

func readBinary(br *bufio.Reader) (*Trace, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: short magic", ErrNotTrace)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrNotTrace, magic[:])
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing version byte", ErrTruncated)
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: %d (reader supports %d)", ErrVersion, version, FormatVersion)
	}
	hdrLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, truncOr(err, "header length")
	}
	if hdrLen > maxHeaderLen {
		return nil, fmt.Errorf("%w: header length %d exceeds limit", ErrCorrupt, hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, truncOr(err, "header")
	}
	var h Header
	if err := json.Unmarshal(hdr, &h); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	t := &Trace{Header: h}
	for {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, truncOr(err, "event kind")
		}
		if kind == 0 { // end marker
			count, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, truncOr(err, "event count")
			}
			if int(count) != len(t.Events) {
				return nil, fmt.Errorf("%w: end marker declares %d events, read %d", ErrCorrupt, count, len(t.Events))
			}
			if _, err := br.ReadByte(); err != io.EOF {
				return nil, fmt.Errorf("%w: content after end marker", ErrCorrupt)
			}
			return t, nil
		}
		ev, err := readBinaryEvent(br, Kind(kind))
		if err != nil {
			return nil, err
		}
		t.Events = append(t.Events, ev)
	}
}

func readBinaryEvent(br *bufio.Reader, kind Kind) (Event, error) {
	ev := Event{Kind: kind}
	if !kind.Valid() {
		return ev, fmt.Errorf("%w: unknown event kind %d", ErrCorrupt, uint8(kind))
	}
	flags, err := br.ReadByte()
	if err != nil {
		return ev, truncOr(err, "event flags")
	}
	ev.Dropped = flags&1 != 0
	var tb [8]byte
	if _, err := io.ReadFull(br, tb[:]); err != nil {
		return ev, truncOr(err, "event time")
	}
	ev.Time = math.Float64frombits(binary.LittleEndian.Uint64(tb[:]))
	fields := [8]*int{&ev.Node, &ev.Peer, &ev.Iter, &ev.Bytes, &ev.ModelBytes, &ev.MetaBytes, &ev.LagMax, &ev.LagN}
	for i, dst := range fields {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return ev, truncOr(err, "event field")
		}
		if v > math.MaxInt32 {
			return ev, fmt.Errorf("%w: event field %d overflows", ErrCorrupt, i)
		}
		*dst = int(v)
	}
	ev.Peer-- // stored shifted by one so -1 packs as zero
	if kind == KindAggregate {
		if _, err := io.ReadFull(br, tb[:]); err != nil {
			return ev, truncOr(err, "lag mean")
		}
		ev.LagMean = math.Float64frombits(binary.LittleEndian.Uint64(tb[:]))
	}
	return ev, nil
}

// truncOr maps unexpected EOFs to ErrTruncated and everything else to
// ErrCorrupt, annotated with what was being read.
func truncOr(err error, what string) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: mid %s", ErrTruncated, what)
	}
	return fmt.Errorf("%w: reading %s: %v", ErrCorrupt, what, err)
}
