// stats.go summarizes and compares traces: per-kind counts, the byte ledger,
// the staleness distribution, and — for sim-vs-real validation — a keyed diff
// reporting per-event time error and ordering agreement.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarizes one trace.
type Stats struct {
	Events int
	ByKind map[Kind]int
	// Duration is the last event's timestamp.
	Duration float64
	// NodesSeen counts distinct subject nodes.
	NodesSeen int
	// Byte ledger accumulated over send events (drops included: senders pay).
	TotalBytes, ModelBytes, MetaBytes int64
	// Drops counts sends lost in flight.
	Drops int
	// StaleMean/StaleMax/StaleP95 summarize staleness over aggregations.
	// StaleMean is weighted by each aggregation's payload count (LagN), so
	// it equals the per-payload mean a Result reports for the same run;
	// StaleMax is the max of per-aggregation maxima (also exact). StaleP95
	// is the 95th percentile of per-aggregation MEAN lags — individual
	// payload lags are not stored in the trace, so it is coarser than the
	// Result's per-payload p95.
	StaleMean, StaleMax, StaleP95 float64
}

// ComputeStats scans t once.
func ComputeStats(t *Trace) Stats {
	s := Stats{Events: len(t.Events), ByKind: make(map[Kind]int), Duration: t.Duration()}
	nodes := make(map[int]struct{})
	var lagMeans []float64
	var lagSum float64
	lagCount := 0
	for _, ev := range t.Events {
		s.ByKind[ev.Kind]++
		nodes[ev.Node] = struct{}{}
		switch ev.Kind {
		case KindSend:
			s.TotalBytes += int64(ev.Bytes)
			s.ModelBytes += int64(ev.ModelBytes)
			s.MetaBytes += int64(ev.MetaBytes)
			if ev.Dropped {
				s.Drops++
			}
		case KindAggregate:
			if ev.LagN > 0 {
				lagMeans = append(lagMeans, ev.LagMean)
				lagSum += ev.LagMean * float64(ev.LagN)
				lagCount += ev.LagN
			}
			if float64(ev.LagMax) > s.StaleMax {
				s.StaleMax = float64(ev.LagMax)
			}
		}
	}
	s.NodesSeen = len(nodes)
	if lagCount > 0 {
		s.StaleMean = lagSum / float64(lagCount)
		s.StaleP95 = Quantile(lagMeans, 0.95)
	}
	return s
}

// String renders a human-readable summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d over %.3fs, %d nodes\n", s.Events, s.Duration, s.NodesSeen)
	kinds := make([]Kind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-11s %d\n", k.String(), s.ByKind[k])
	}
	fmt.Fprintf(&b, "bytes: %d total (%d model, %d metadata), %d sends dropped\n",
		s.TotalBytes, s.ModelBytes, s.MetaBytes, s.Drops)
	fmt.Fprintf(&b, "staleness: mean %.3f, max %.0f iterations (p95 of per-aggregation means %.3f)\n",
		s.StaleMean, s.StaleMax, s.StaleP95)
	return b.String()
}

// Diff reports how two traces of the same logical run differ. Events are
// matched by (kind, node, peer, iteration) with repeated keys paired in
// order, so a simulated schedule lines up with its cluster execution even
// when global interleavings differ.
type Diff struct {
	// Matched counts events present in both traces; OnlyA/OnlyB count the
	// leftovers.
	Matched, OnlyA, OnlyB int
	// TimeErrMean/Max/P95 summarize |timeA - timeB| over matched events —
	// the per-event time error of A's clock against B's.
	TimeErrMean, TimeErrMax, TimeErrP95 float64
	// DurationA/DurationB are the traces' total spans (their ratio is the
	// aggregate time-model error).
	DurationA, DurationB float64
	// BytesA/BytesB are the traces' send-ledger totals.
	BytesA, BytesB int64
	// OrderMismatches counts nodes whose own event sequence (the per-node
	// observed ordering) differs between the traces; Nodes is how many nodes
	// appeared in either.
	OrderMismatches, Nodes int
}

type diffKey struct {
	kind       Kind
	node, peer int
	iter       int
}

// Compare diffs a against b.
func Compare(a, b *Trace) Diff {
	d := Diff{DurationA: a.Duration(), DurationB: b.Duration()}
	d.BytesA = sendBytes(a)
	d.BytesB = sendBytes(b)

	// Pair events by key, FIFO within a key.
	bTimes := make(map[diffKey][]float64)
	for _, ev := range b.Events {
		k := keyOf(ev)
		bTimes[k] = append(bTimes[k], ev.Time)
	}
	var errs []float64
	for _, ev := range a.Events {
		k := keyOf(ev)
		q := bTimes[k]
		if len(q) == 0 {
			d.OnlyA++
			continue
		}
		bTimes[k] = q[1:]
		d.Matched++
		errs = append(errs, math.Abs(ev.Time-q[0]))
	}
	for _, q := range bTimes {
		d.OnlyB += len(q)
	}
	if len(errs) > 0 {
		var sum float64
		for _, e := range errs {
			sum += e
			if e > d.TimeErrMax {
				d.TimeErrMax = e
			}
		}
		d.TimeErrMean = sum / float64(len(errs))
		d.TimeErrP95 = Quantile(errs, 0.95)
	}

	// Per-node observed ordering: the sequence of a node's own events.
	seqA, seqB := nodeSequences(a), nodeSequences(b)
	nodes := make(map[int]struct{})
	for n := range seqA {
		nodes[n] = struct{}{}
	}
	for n := range seqB {
		nodes[n] = struct{}{}
	}
	d.Nodes = len(nodes)
	for n := range nodes {
		if !equalKeys(seqA[n], seqB[n]) {
			d.OrderMismatches++
		}
	}
	return d
}

// String renders the diff report.
func (d Diff) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "matched %d events (%d only in A, %d only in B)\n", d.Matched, d.OnlyA, d.OnlyB)
	fmt.Fprintf(&b, "per-event time error: mean %.4fs, p95 %.4fs, max %.4fs\n",
		d.TimeErrMean, d.TimeErrP95, d.TimeErrMax)
	ratio := math.NaN()
	if d.DurationB > 0 {
		ratio = d.DurationA / d.DurationB
	}
	fmt.Fprintf(&b, "duration: A %.3fs vs B %.3fs (ratio %.3f)\n", d.DurationA, d.DurationB, ratio)
	fmt.Fprintf(&b, "send bytes: A %d vs B %d (delta %d)\n", d.BytesA, d.BytesB, d.BytesA-d.BytesB)
	fmt.Fprintf(&b, "per-node ordering: %d/%d nodes diverge\n", d.OrderMismatches, d.Nodes)
	return b.String()
}

// InSync reports whether the traces describe the same schedule: every event
// matched, identical byte ledgers, and identical per-node orderings. Time
// errors are allowed — that is the measurement.
func (d Diff) InSync() bool {
	return d.OnlyA == 0 && d.OnlyB == 0 && d.BytesA == d.BytesB && d.OrderMismatches == 0
}

func keyOf(ev Event) diffKey {
	return diffKey{kind: ev.Kind, node: ev.Node, peer: ev.Peer, iter: ev.Iter}
}

func sendBytes(t *Trace) int64 {
	var total int64
	for _, ev := range t.Events {
		if ev.Kind == KindSend {
			total += int64(ev.Bytes)
		}
	}
	return total
}

func nodeSequences(t *Trace) map[int][]diffKey {
	seq := make(map[int][]diffKey)
	for _, ev := range t.Events {
		seq[ev.Node] = append(seq[ev.Node], keyOf(ev))
	}
	return seq
}

func equalKeys(a, b []diffKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Quantile returns the q-quantile (0..1) of xs by the nearest-rank method,
// without mutating xs. Returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
