// stats.go summarizes and compares traces: per-kind counts, the byte ledger,
// the staleness distribution, and — for sim-vs-real validation — a keyed diff
// reporting per-event time error and ordering agreement.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Stats summarizes one trace.
type Stats struct {
	Events int
	ByKind map[Kind]int
	// Duration is the last event's timestamp.
	Duration float64
	// NodesSeen counts distinct subject nodes.
	NodesSeen int
	// Byte ledger accumulated over send events (drops included: senders pay).
	TotalBytes, ModelBytes, MetaBytes int64
	// Drops counts sends lost in flight.
	Drops int
	// StaleMean/StaleMax/StaleP95 summarize staleness over aggregations.
	// StaleMean is weighted by each aggregation's payload count (LagN), so
	// it equals the per-payload mean a Result reports for the same run;
	// StaleMax is the max of per-aggregation maxima (also exact). StaleP95
	// is the 95th percentile of per-aggregation MEAN lags — individual
	// payload lags are not stored in the trace, so it is coarser than the
	// Result's per-payload p95.
	StaleMean, StaleMax, StaleP95 float64
}

// ComputeStats scans t once.
func ComputeStats(t *Trace) Stats {
	var acc statsAccum
	acc.init()
	for i := range t.Events {
		acc.add(&t.Events[i])
	}
	return acc.finish()
}

// statsAccum folds events into Stats one at a time, shared by ComputeStats
// and the streaming ReadStats. Retained state is O(nodes) plus one float
// per aggregate event (the per-aggregation means the exact StaleP95 needs);
// the send/arrival bulk of a trace — the overwhelming majority at degree d —
// is folded without retention.
type statsAccum struct {
	s        Stats
	nodes    map[int]struct{}
	lagMeans []float64
	lagSum   float64
	lagCount int
}

func (a *statsAccum) init() {
	a.s.ByKind = make(map[Kind]int)
	a.nodes = make(map[int]struct{})
}

func (a *statsAccum) add(ev *Event) {
	a.s.Events++
	a.s.ByKind[ev.Kind]++
	a.s.Duration = ev.Time
	a.nodes[ev.Node] = struct{}{}
	switch ev.Kind {
	case KindSend:
		a.s.TotalBytes += int64(ev.Bytes)
		a.s.ModelBytes += int64(ev.ModelBytes)
		a.s.MetaBytes += int64(ev.MetaBytes)
		if ev.Dropped {
			a.s.Drops++
		}
	case KindAggregate:
		if ev.LagN > 0 {
			a.lagMeans = append(a.lagMeans, ev.LagMean)
			a.lagSum += ev.LagMean * float64(ev.LagN)
			a.lagCount += ev.LagN
		}
		if float64(ev.LagMax) > a.s.StaleMax {
			a.s.StaleMax = float64(ev.LagMax)
		}
	}
}

func (a *statsAccum) finish() Stats {
	s := a.s
	s.NodesSeen = len(a.nodes)
	if a.lagCount > 0 {
		s.StaleMean = a.lagSum / float64(a.lagCount)
		s.StaleP95 = Quantile(a.lagMeans, 0.95)
	}
	return s
}

// String renders a human-readable summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d over %.3fs, %d nodes\n", s.Events, s.Duration, s.NodesSeen)
	kinds := make([]Kind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-11s %d\n", k.String(), s.ByKind[k])
	}
	fmt.Fprintf(&b, "bytes: %d total (%d model, %d metadata), %d sends dropped\n",
		s.TotalBytes, s.ModelBytes, s.MetaBytes, s.Drops)
	fmt.Fprintf(&b, "staleness: mean %.3f, max %.0f iterations (p95 of per-aggregation means %.3f)\n",
		s.StaleMean, s.StaleMax, s.StaleP95)
	return b.String()
}

// Diff reports how two traces of the same logical run differ. Events are
// matched by (kind, node, peer, iteration) with repeated keys paired in
// order, so a simulated schedule lines up with its cluster execution even
// when global interleavings differ.
type Diff struct {
	// Matched counts events present in both traces; OnlyA/OnlyB count the
	// leftovers.
	Matched, OnlyA, OnlyB int
	// TimeErrMean/Max/P95 summarize |timeA - timeB| over matched events —
	// the per-event time error of A's clock against B's.
	TimeErrMean, TimeErrMax, TimeErrP95 float64
	// DurationA/DurationB are the traces' total spans (their ratio is the
	// aggregate time-model error).
	DurationA, DurationB float64
	// BytesA/BytesB are the traces' send-ledger totals.
	BytesA, BytesB int64
	// OrderMismatches counts nodes whose own event sequence (the per-node
	// observed ordering) differs between the traces; Nodes is how many nodes
	// appeared in either.
	OrderMismatches, Nodes int
}

type diffKey struct {
	kind       Kind
	node, peer int
	iter       int
}

// Compare diffs a against b.
func Compare(a, b *Trace) Diff {
	var c diffAccum
	c.init()
	for i := range b.Events {
		c.addB(&b.Events[i])
	}
	for i := range a.Events {
		c.addA(&a.Events[i])
	}
	return c.finish()
}

// CompareReaders is Compare over streaming inputs: b is indexed in one pass,
// then a streams through the matcher — neither trace's event slice is ever
// materialized. Memory is one timestamp per B event (the FIFO match index)
// plus one error sample per match and O(nodes) ordering hashes: several
// times smaller than holding both event slices, though still linear in the
// trace length. Inputs must be freshly opened readers.
func CompareReaders(a, b *StreamReader) (Diff, error) {
	var c diffAccum
	c.init()
	for {
		ev, err := b.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Diff{}, fmt.Errorf("trace B: %w", err)
		}
		c.addB(&ev)
	}
	for {
		ev, err := a.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Diff{}, fmt.Errorf("trace A: %w", err)
		}
		c.addA(&ev)
	}
	return c.finish(), nil
}

// diffAccum folds the two event streams of Compare: all of B first (the
// index side), then A (the probe side). Per-node ordering is tracked as a
// rolling order-sensitive FNV-1a hash plus a length, O(nodes) instead of a
// key per event, so the sequences themselves are never retained; bTimes and
// errs stay O(events) but hold one scalar per event rather than event
// structs.
type diffAccum struct {
	d          Diff
	bTimes     map[diffKey][]float64
	seqA, seqB map[int]nodeSeq
	errs       []float64
}

// nodeSeq summarizes one node's observed event ordering.
type nodeSeq struct {
	hash uint64
	n    int
}

// fold mixes k into the order-sensitive sequence hash.
func (s nodeSeq) fold(k diffKey) nodeSeq {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := s.hash
	if s.n == 0 {
		h = offset64
	}
	for _, v := range [4]uint64{uint64(k.kind), uint64(k.node), uint64(uint(k.peer)), uint64(uint(k.iter))} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return nodeSeq{hash: h, n: s.n + 1}
}

func (c *diffAccum) init() {
	c.bTimes = make(map[diffKey][]float64)
	c.seqA = make(map[int]nodeSeq)
	c.seqB = make(map[int]nodeSeq)
}

func (c *diffAccum) addB(ev *Event) {
	k := keyOf(*ev)
	c.bTimes[k] = append(c.bTimes[k], ev.Time)
	c.seqB[ev.Node] = c.seqB[ev.Node].fold(k)
	c.d.DurationB = ev.Time
	if ev.Kind == KindSend {
		c.d.BytesB += int64(ev.Bytes)
	}
}

func (c *diffAccum) addA(ev *Event) {
	k := keyOf(*ev)
	c.seqA[ev.Node] = c.seqA[ev.Node].fold(k)
	c.d.DurationA = ev.Time
	if ev.Kind == KindSend {
		c.d.BytesA += int64(ev.Bytes)
	}
	q := c.bTimes[k]
	if len(q) == 0 {
		c.d.OnlyA++
		return
	}
	c.bTimes[k] = q[1:]
	c.d.Matched++
	c.errs = append(c.errs, math.Abs(ev.Time-q[0]))
}

func (c *diffAccum) finish() Diff {
	d := c.d
	for _, q := range c.bTimes {
		d.OnlyB += len(q)
	}
	if len(c.errs) > 0 {
		var sum float64
		for _, e := range c.errs {
			sum += e
			if e > d.TimeErrMax {
				d.TimeErrMax = e
			}
		}
		d.TimeErrMean = sum / float64(len(c.errs))
		d.TimeErrP95 = Quantile(c.errs, 0.95)
	}
	// Per-node observed ordering: a node diverges when its sequence hash or
	// event count differs between the traces.
	nodes := make(map[int]struct{})
	for n := range c.seqA {
		nodes[n] = struct{}{}
	}
	for n := range c.seqB {
		nodes[n] = struct{}{}
	}
	d.Nodes = len(nodes)
	for n := range nodes {
		if c.seqA[n] != c.seqB[n] {
			d.OrderMismatches++
		}
	}
	return d
}

// String renders the diff report.
func (d Diff) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "matched %d events (%d only in A, %d only in B)\n", d.Matched, d.OnlyA, d.OnlyB)
	fmt.Fprintf(&b, "per-event time error: mean %.4fs, p95 %.4fs, max %.4fs\n",
		d.TimeErrMean, d.TimeErrP95, d.TimeErrMax)
	ratio := math.NaN()
	if d.DurationB > 0 {
		ratio = d.DurationA / d.DurationB
	}
	fmt.Fprintf(&b, "duration: A %.3fs vs B %.3fs (ratio %.3f)\n", d.DurationA, d.DurationB, ratio)
	fmt.Fprintf(&b, "send bytes: A %d vs B %d (delta %d)\n", d.BytesA, d.BytesB, d.BytesA-d.BytesB)
	fmt.Fprintf(&b, "per-node ordering: %d/%d nodes diverge\n", d.OrderMismatches, d.Nodes)
	return b.String()
}

// InSync reports whether the traces describe the same schedule: every event
// matched, identical byte ledgers, and identical per-node orderings. Time
// errors are allowed — that is the measurement.
func (d Diff) InSync() bool {
	return d.OnlyA == 0 && d.OnlyB == 0 && d.BytesA == d.BytesB && d.OrderMismatches == 0
}

func keyOf(ev Event) diffKey {
	return diffKey{kind: ev.Kind, node: ev.Node, peer: ev.Peer, iter: ev.Iter}
}

// Quantile returns the q-quantile (0..1) of xs by the nearest-rank method,
// without mutating xs. Returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
