// stream.go is the bounded-memory side of the trace subsystem: a
// StreamRecorder that writes the versioned trace formats incrementally as a
// run executes (so recording a 1024-node schedule never holds O(events) in
// RAM), and a StreamReader that parses traces event by event (so stats and
// diffs over cluster-scale traces run on small machines). Both share the
// validation and byte layout of the whole-trace Write/Read paths: a streamed
// recording is byte-identical to writing the equivalent in-memory Recorder,
// and the whole-trace readers are thin loops over StreamReader.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// StreamRecorder writes a trace incrementally. Events pass through a bounded
// bufio buffer straight to the destination; Close writes the footer that
// makes the file a complete trace. A recorder abandoned without Close leaves
// a file the readers report as ErrTruncated — the honest description of an
// interrupted run.
//
// Record performs the same per-event validation as Write; the first
// violation sticks (see Err) and is also returned by Close, so a malformed
// recording cannot end in a valid-looking file.
type StreamRecorder struct {
	wa     io.WriterAt // seekable destination (needed only by SetRounds)
	owned  *os.File    // file created by NewStreamRecorderFile; closed by Close
	bw     *bufio.Writer
	enc    *json.Encoder // JSONL mode
	binary bool
	h      Header

	jsonOff, jsonLen int64 // position of the header JSON, for SetRounds rewrite
	count            int
	prev             float64
	rounds           int // SetRounds override; -1 = none
	closed           bool
	err              error

	scratch [binary.MaxVarintLen64]byte
}

var (
	_ Sink         = (*StreamRecorder)(nil)
	_ RoundsSetter = (*StreamRecorder)(nil)
)

// NewStreamRecorder starts a streaming recording on w: binary (.jtb layout)
// when bin is set, JSONL otherwise. The header is validated and written
// immediately. SetRounds requires a seekable destination — use
// NewStreamRecorderFile when early-stopped runs must stay replayable.
func NewStreamRecorder(w io.Writer, h Header, bin bool) (*StreamRecorder, error) {
	h.Format = FormatName
	h.Version = FormatVersion
	if err := validateHeader(h); err != nil {
		return nil, err
	}
	s := &StreamRecorder{
		bw:     bufio.NewWriter(w),
		binary: bin,
		h:      h,
		prev:   math.Inf(-1),
		rounds: -1,
	}
	if wa, ok := w.(io.WriterAt); ok {
		s.wa = wa // seekable: SetRounds can rewrite the header on Close
	}
	var err error
	if bin {
		s.jsonOff, s.jsonLen, err = writeBinaryHeader(s.bw, h)
	} else {
		var hdr []byte
		if hdr, err = json.Marshal(h); err == nil {
			s.jsonOff, s.jsonLen = 0, int64(len(hdr))
			if _, err = s.bw.Write(hdr); err == nil {
				err = s.bw.WriteByte('\n')
			}
		}
		s.enc = json.NewEncoder(s.bw)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// NewStreamRecorderFile creates path and streams to it, choosing the
// encoding by extension like WriteFile (BinaryExt selects binary). The file
// is owned by the recorder: Close finalizes and closes it.
func NewStreamRecorderFile(path string, h Header) (*StreamRecorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s, err := NewStreamRecorder(f, h, strings.HasSuffix(path, BinaryExt))
	if err != nil {
		f.Close()
		return nil, err
	}
	s.owned = f
	return s, nil
}

// Record implements Sink. The first invalid event (or write failure) sticks:
// later events are dropped and the error surfaces through Err and Close.
func (s *StreamRecorder) Record(ev Event) {
	if s.err != nil || s.closed {
		return
	}
	if err := validateEvent(s.h, s.count, &ev, s.prev); err != nil {
		s.err = err
		return
	}
	if s.binary {
		putUvarint := func(v uint64) error {
			n := binary.PutUvarint(s.scratch[:], v)
			_, err := s.bw.Write(s.scratch[:n])
			return err
		}
		s.err = writeBinaryEvent(s.bw, putUvarint, &ev)
	} else {
		s.err = s.enc.Encode(&ev)
	}
	if s.err == nil {
		s.count++
		s.prev = ev.Time
	}
}

// Len returns the number of events recorded so far.
func (s *StreamRecorder) Len() int { return s.count }

// Err returns the sticky recording error, if any.
func (s *StreamRecorder) Err() error { return s.err }

// SetRounds implements RoundsSetter: Close rewrites the already-written
// header's round budget in place (padded to its original length, which JSON
// readers tolerate). It requires a seekable destination; on a plain writer
// Close reports the failure instead of leaving a misleading header.
func (s *StreamRecorder) SetRounds(rounds int) { s.rounds = rounds }

// Flush forces buffered events to the destination without finalizing the
// trace (the file stays truncated until Close).
func (s *StreamRecorder) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// Close writes the footer, flushes, applies any SetRounds header rewrite,
// and closes the file when the recorder owns one. It returns the first error
// of the whole recording.
func (s *StreamRecorder) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.err == nil {
		if s.binary {
			if err := s.bw.WriteByte(0); err != nil {
				s.err = err
			} else {
				n := binary.PutUvarint(s.scratch[:], uint64(s.count))
				_, s.err = s.bw.Write(s.scratch[:n])
			}
		} else {
			s.err = s.enc.Encode(footer{End: true, Events: s.count})
		}
	}
	if ferr := s.bw.Flush(); s.err == nil {
		s.err = ferr
	}
	if s.err == nil && s.rounds >= 0 && s.rounds != s.h.Rounds {
		s.err = s.rewriteRounds()
	}
	if s.owned != nil {
		if cerr := s.owned.Close(); s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

// Abort flushes buffered events and closes the owned file WITHOUT writing
// the footer: the file stays in the truncated state readers report as
// ErrTruncated — the right disposition for a run that failed mid-way, where
// Close would falsely certify a complete trace whose header still advertises
// the full round budget.
func (s *StreamRecorder) Abort() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	if ferr := s.bw.Flush(); s.err == nil {
		s.err = ferr
	}
	if s.owned != nil {
		if cerr := s.owned.Close(); s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

// rewriteRounds re-serializes the header with the overridden round budget
// and writes it over the original, padded with spaces to the same length
// (JSON parsers skip the trailing whitespace). Rounds only shrinks on early
// stop, so the new JSON never outgrows the reserved bytes.
func (s *StreamRecorder) rewriteRounds() error {
	if s.wa == nil {
		return fmt.Errorf("trace: cannot rewrite header rounds on a non-seekable destination")
	}
	h := s.h
	h.Rounds = s.rounds
	hdr, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if int64(len(hdr)) > s.jsonLen {
		return fmt.Errorf("trace: rewritten header (%d bytes) exceeds reserved %d bytes", len(hdr), s.jsonLen)
	}
	padded := make([]byte, s.jsonLen)
	copy(padded, hdr)
	for i := len(hdr); i < len(padded); i++ {
		padded[i] = ' '
	}
	_, err = s.wa.WriteAt(padded, s.jsonOff)
	return err
}

// StreamReader parses a trace event by event, sniffing the encoding from the
// first bytes and validating incrementally with the same rules (and typed
// errors) as Read. Next returns io.EOF after a clean footer; ErrTruncated
// and ErrCorrupt keep their whole-trace meanings. Memory use is O(1) in the
// event count.
type StreamReader struct {
	h     Header
	bin   bool
	br    *bufio.Reader  // binary mode
	sc    *bufio.Scanner // JSONL mode
	count int
	prev  float64
	done  bool
	err   error

	// JSONL deferred-parse-error state: an unparsable line is corruption if
	// anything follows it, but ErrTruncated when it is the last line.
	pendingErr error
	line       int
	sawFooter  bool
}

// NewStreamReader sniffs and validates the header and prepares event
// iteration.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("%w: empty input", ErrNotTrace)
	}
	s := &StreamReader{prev: math.Inf(-1), line: 1}
	switch first[0] {
	case binaryMagic[0]:
		s.bin = true
		s.br = br
		err = s.initBinary()
	case '{':
		s.sc = bufio.NewScanner(br)
		s.sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		err = s.initJSONL()
	default:
		return nil, fmt.Errorf("%w: unrecognized leading byte %q", ErrNotTrace, first[0])
	}
	if err != nil {
		return nil, err
	}
	if err := validateHeader(s.h); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *StreamReader) initBinary() error {
	var magic [4]byte
	if _, err := io.ReadFull(s.br, magic[:]); err != nil {
		return fmt.Errorf("%w: short magic", ErrNotTrace)
	}
	if magic != binaryMagic {
		return fmt.Errorf("%w: bad magic %q", ErrNotTrace, magic[:])
	}
	version, err := s.br.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: missing version byte", ErrTruncated)
	}
	if version != FormatVersion {
		return fmt.Errorf("%w: %d (reader supports %d)", ErrVersion, version, FormatVersion)
	}
	hdrLen, err := binary.ReadUvarint(s.br)
	if err != nil {
		return truncOr(err, "header length")
	}
	if hdrLen > maxHeaderLen {
		return fmt.Errorf("%w: header length %d exceeds limit", ErrCorrupt, hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(s.br, hdr); err != nil {
		return truncOr(err, "header")
	}
	if err := json.Unmarshal(hdr, &s.h); err != nil {
		return fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	return nil
}

func (s *StreamReader) initJSONL() error {
	if !s.sc.Scan() {
		return fmt.Errorf("%w: no header line", ErrNotTrace)
	}
	if err := json.Unmarshal(s.sc.Bytes(), &s.h); err != nil {
		return fmt.Errorf("%w: header: %v", ErrNotTrace, err)
	}
	if s.h.Format != FormatName {
		return fmt.Errorf("%w: header format %q", ErrNotTrace, s.h.Format)
	}
	if s.h.Version != FormatVersion {
		return fmt.Errorf("%w: %d (reader supports %d)", ErrVersion, s.h.Version, FormatVersion)
	}
	return nil
}

// Header returns the trace header.
func (s *StreamReader) Header() Header { return s.h }

// Count returns the number of events returned so far.
func (s *StreamReader) Count() int { return s.count }

// Next returns the next event. io.EOF marks a cleanly terminated trace; any
// other error is sticky and typed (ErrTruncated, ErrCorrupt).
func (s *StreamReader) Next() (Event, error) {
	if s.done {
		return Event{}, s.err
	}
	var (
		ev  Event
		err error
	)
	if s.bin {
		ev, err = s.nextBinary()
	} else {
		ev, err = s.nextJSONL()
	}
	if err != nil {
		s.done, s.err = true, err
		return Event{}, err
	}
	if err := validateEvent(s.h, s.count, &ev, s.prev); err != nil {
		s.done, s.err = true, err
		return Event{}, err
	}
	s.count++
	s.prev = ev.Time
	return ev, nil
}

func (s *StreamReader) nextBinary() (Event, error) {
	kind, err := s.br.ReadByte()
	if err != nil {
		return Event{}, truncOr(err, "event kind")
	}
	if kind == 0 { // end marker
		count, err := binary.ReadUvarint(s.br)
		if err != nil {
			return Event{}, truncOr(err, "event count")
		}
		if int(count) != s.count {
			return Event{}, fmt.Errorf("%w: end marker declares %d events, read %d", ErrCorrupt, count, s.count)
		}
		if _, err := s.br.ReadByte(); err != io.EOF {
			return Event{}, fmt.Errorf("%w: content after end marker", ErrCorrupt)
		}
		return Event{}, io.EOF
	}
	return readBinaryEvent(s.br, Kind(kind))
}

func (s *StreamReader) nextJSONL() (Event, error) {
	for s.sc.Scan() {
		s.line++
		raw := bytes.TrimSpace(s.sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if s.pendingErr != nil {
			return Event{}, s.pendingErr
		}
		if s.sawFooter {
			return Event{}, fmt.Errorf("%w: line %d: content after footer", ErrCorrupt, s.line)
		}
		var f footer
		if err := json.Unmarshal(raw, &f); err == nil && f.End {
			if f.Events != s.count {
				return Event{}, fmt.Errorf("%w: footer declares %d events, read %d", ErrCorrupt, f.Events, s.count)
			}
			s.sawFooter = true
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			s.pendingErr = fmt.Errorf("%w: line %d: %v", ErrCorrupt, s.line, err)
			continue
		}
		return ev, nil
	}
	if err := s.sc.Err(); err != nil {
		return Event{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if s.pendingErr != nil {
		// The unparsable line was the last one: a mid-write cut-off.
		return Event{}, fmt.Errorf("%w: last line unparsable after %d events", ErrTruncated, s.count)
	}
	if !s.sawFooter {
		return Event{}, fmt.Errorf("%w: footer missing after %d events", ErrTruncated, s.count)
	}
	return Event{}, io.EOF
}
