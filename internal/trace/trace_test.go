package trace

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// sampleTrace builds a small but representative trace exercising every kind,
// drops, churn, and repeated (node, iter) keys.
func sampleTrace() *Trace {
	h := Header{
		Format: FormatName, Version: FormatVersion,
		Nodes: 4, Rounds: 2, Source: SourceSim, Policy: PolicyBarrier,
		Meta: map[string]string{"dataset": "cifar10", "seed": "42"},
	}
	events := []Event{
		{Time: 0.010, Kind: KindTrainDone, Node: 0, Peer: -1, Iter: 0},
		{Time: 0.010, Kind: KindSend, Node: 0, Peer: 1, Iter: 0, Bytes: 140, ModelBytes: 100, MetaBytes: 40},
		{Time: 0.010, Kind: KindSend, Node: 0, Peer: 2, Iter: 0, Bytes: 140, ModelBytes: 100, MetaBytes: 40, Dropped: true},
		{Time: 0.012, Kind: KindTrainDone, Node: 1, Peer: -1, Iter: 0},
		{Time: 0.013, Kind: KindSend, Node: 1, Peer: 0, Iter: 0, Bytes: 150, ModelBytes: 110, MetaBytes: 40},
		{Time: 0.020, Kind: KindArrival, Node: 1, Peer: 0, Iter: 0},
		{Time: 0.021, Kind: KindArrival, Node: 2, Peer: 0, Iter: 0, Dropped: true},
		{Time: 0.022, Kind: KindArrival, Node: 0, Peer: 1, Iter: 0},
		{Time: 0.022, Kind: KindAggregate, Node: 0, Peer: -1, Iter: 0, LagMax: 2, LagMean: 1.5, LagN: 2},
		{Time: 0.030, Kind: KindLeave, Node: 3, Peer: -1},
		{Time: 0.040, Kind: KindEpoch, Node: 0, Peer: -1, Iter: 1},
		{Time: 0.050, Kind: KindJoin, Node: 3, Peer: -1},
		{Time: 0.060, Kind: KindTrainDone, Node: 0, Peer: -1, Iter: 1},
		{Time: 0.061, Kind: KindAggregate, Node: 1, Peer: -1, Iter: 0, LagN: 1, LagMean: 0},
	}
	return &Trace{Header: h, Events: events}
}

func roundTrip(t *testing.T, binary bool) {
	t.Helper()
	src := sampleTrace()
	var buf bytes.Buffer
	var err error
	if binary {
		err = WriteBinary(&buf, src)
	} else {
		err = Write(&buf, src)
	}
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Header.Nodes != src.Header.Nodes || got.Header.Source != src.Header.Source ||
		got.Header.Policy != src.Header.Policy || got.Header.Meta["dataset"] != "cifar10" {
		t.Fatalf("header mismatch: %+v", got.Header)
	}
	if len(got.Events) != len(src.Events) {
		t.Fatalf("event count: got %d, want %d", len(got.Events), len(src.Events))
	}
	for i := range src.Events {
		if got.Events[i] != src.Events[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got.Events[i], src.Events[i])
		}
	}
}

func TestRoundTripJSONL(t *testing.T)  { roundTrip(t, false) }
func TestRoundTripBinary(t *testing.T) { roundTrip(t, true) }

// TestBinaryIsCompact: the point of the binary variant.
func TestBinaryIsCompact(t *testing.T) {
	src := sampleTrace()
	var jb, bb bytes.Buffer
	if err := Write(&jb, src); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, src); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= jb.Len() {
		t.Fatalf("binary (%d bytes) not smaller than JSONL (%d bytes)", bb.Len(), jb.Len())
	}
}

// TestWriteFileExtension: .jtb selects binary, anything else JSONL, and both
// read back through the sniffing ReadFile.
func TestWriteFileExtension(t *testing.T) {
	dir := t.TempDir()
	src := sampleTrace()
	for _, name := range []string{"t.jsonl", "t" + BinaryExt} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, src); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Events) != len(src.Events) {
			t.Fatalf("%s: %d events, want %d", name, len(got.Events), len(src.Events))
		}
	}
}

// TestReaderRejections: truncated, corrupt, and mis-versioned inputs must
// fail with the matching typed error in both encodings.
func TestReaderRejections(t *testing.T) {
	src := sampleTrace()
	var jsonl, bin bytes.Buffer
	if err := Write(&jsonl, src); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, src); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrNotTrace},
		{"garbage", []byte("hello world\n"), ErrNotTrace},
		{"json-but-not-trace", []byte(`{"foo": 1}` + "\n"), ErrNotTrace},
		{"jsonl-truncated", jsonl.Bytes()[:jsonl.Len()/2], ErrTruncated},
		{"jsonl-no-footer", jsonl.Bytes()[:bytes.LastIndexByte(jsonl.Bytes()[:jsonl.Len()-1], '\n')+1], ErrTruncated},
		{"binary-truncated", bin.Bytes()[:bin.Len()-3], ErrTruncated},
		{"binary-mid-event", bin.Bytes()[:bin.Len()/2], ErrTruncated},
		{"jsonl-bad-version", []byte(strings.Replace(jsonl.String(), `"version":1`, `"version":99`, 1)), ErrVersion},
		{"jsonl-corrupt-line", []byte(strings.Replace(jsonl.String(), `"k":"send"`, `"k":"sennnd"`, 1)), ErrCorrupt},
	}
	// Binary bad version: patch the version byte.
	bv := append([]byte(nil), bin.Bytes()...)
	bv[4] = 99
	cases = append(cases, struct {
		name string
		data []byte
		want error
	}{"binary-bad-version", bv, ErrVersion})
	// Binary corrupt kind: patch the first event's kind byte to 200. The
	// first event starts right after magic+version+uvarint(len)+header JSON.
	bk := append([]byte(nil), bin.Bytes()...)
	hdrJSON, _ := indexHeaderEnd(bk)
	bk[hdrJSON] = 200
	cases = append(cases, struct {
		name string
		data []byte
		want error
	}{"binary-corrupt-kind", bk, ErrCorrupt})

	for _, tc := range cases {
		if _, err := Read(bytes.NewReader(tc.data)); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// indexHeaderEnd finds the offset of the first event in a binary trace.
func indexHeaderEnd(b []byte) (int, error) {
	i := 5 // magic + version
	hdrLen := 0
	for shift := 0; ; shift += 7 {
		c := b[i]
		i++
		hdrLen |= int(c&0x7f) << shift
		if c < 0x80 {
			break
		}
	}
	return i + hdrLen, nil
}

// TestValidateRejects: structural violations are ErrCorrupt.
func TestValidateRejects(t *testing.T) {
	base := sampleTrace()
	mutate := func(f func(*Trace)) *Trace {
		cp := &Trace{Header: base.Header, Events: append([]Event(nil), base.Events...)}
		f(cp)
		return cp
	}
	cases := map[string]*Trace{
		"node-out-of-range": mutate(func(tr *Trace) { tr.Events[0].Node = 99 }),
		"peer-out-of-range": mutate(func(tr *Trace) { tr.Events[1].Peer = -3 }),
		"peer-on-traindone": mutate(func(tr *Trace) { tr.Events[0].Peer = 1 }),
		"time-regression":   mutate(func(tr *Trace) { tr.Events[3].Time = 0.001 }),
		"nan-time":          mutate(func(tr *Trace) { tr.Events[0].Time = math.NaN() }),
		"negative-iter":     mutate(func(tr *Trace) { tr.Events[0].Iter = -1 }),
		"zero-nodes":        mutate(func(tr *Trace) { tr.Header.Nodes = 0 }),
	}
	for name, tr := range cases {
		if err := Validate(tr.Header, tr.Events); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err == nil {
			t.Errorf("%s: writer accepted invalid trace", name)
		}
	}
}

// TestReplayerIndex: FIFO consumption per key, churn passthrough, and typed
// failure on empty schedules.
func TestReplayerIndex(t *testing.T) {
	tr := sampleTrace()
	rp, err := NewReplayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := rp.TrainDoneTime(0, 0); !ok || got != 0.010 {
		t.Fatalf("TrainDoneTime(0,0) = %v,%v", got, ok)
	}
	if got, ok := rp.TrainDoneTime(0, 1); !ok || got != 0.060 {
		t.Fatalf("TrainDoneTime(0,1) = %v,%v", got, ok)
	}
	if _, ok := rp.TrainDoneTime(0, 0); ok {
		t.Fatal("TrainDoneTime(0,0) should be consumed")
	}
	if _, ok := rp.TrainDoneTime(2, 0); ok {
		t.Fatal("TrainDoneTime(2,0) should not exist")
	}
	at, dropped, ok := rp.NextArrival(0, 2, 0)
	if !ok || !dropped || at != 0.021 {
		t.Fatalf("NextArrival(0,2,0) = %v,%v,%v", at, dropped, ok)
	}
	if at, dropped, ok = rp.NextArrival(0, 1, 0); !ok || dropped || at != 0.020 {
		t.Fatalf("NextArrival(0,1,0) = %v,%v,%v", at, dropped, ok)
	}
	churn := rp.Churn()
	if len(churn) != 2 || churn[0].Kind != KindLeave || churn[1].Kind != KindJoin || churn[0].Node != 3 {
		t.Fatalf("churn: %+v", churn)
	}
	epochs := rp.Epochs()
	if len(epochs) != 1 || epochs[0].Kind != KindEpoch || epochs[0].Iter != 1 || epochs[0].Time != 0.040 {
		t.Fatalf("epochs: %+v", epochs)
	}
	empty := &Trace{Header: tr.Header, Events: []Event{{Time: 0, Kind: KindLeave, Node: 0, Peer: -1}}}
	if _, err := NewReplayer(empty); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty schedule: got %v, want ErrCorrupt", err)
	}
}

// TestStatsAndCompare: the summary and diff report the ledger, staleness,
// and ordering agreement.
func TestStatsAndCompare(t *testing.T) {
	tr := sampleTrace()
	s := ComputeStats(tr)
	if s.Events != len(tr.Events) || s.ByKind[KindSend] != 3 || s.Drops != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.TotalBytes != 140+140+150 {
		t.Fatalf("total bytes: %d", s.TotalBytes)
	}
	// Payload-weighted mean: (1.5*2 + 0*1) / 3 payloads.
	if s.StaleMax != 2 || s.StaleMean != 1.0 {
		t.Fatalf("staleness: mean %v max %v", s.StaleMean, s.StaleMax)
	}
	if s.Duration != 0.061 {
		t.Fatalf("duration: %v", s.Duration)
	}

	same := Compare(tr, tr)
	if !same.InSync() || same.TimeErrMax != 0 || same.Matched != len(tr.Events) {
		t.Fatalf("self-compare not in sync: %+v", same)
	}

	// Shift every time by 0.5s and drop one event: times diverge, sequence
	// keys still pair, the dropped event is unmatched.
	shifted := &Trace{Header: tr.Header, Events: append([]Event(nil), tr.Events...)}
	for i := range shifted.Events {
		shifted.Events[i].Time += 0.5
	}
	shifted.Events = shifted.Events[:len(shifted.Events)-1]
	d := Compare(tr, shifted)
	if d.OnlyA != 1 || d.OnlyB != 0 {
		t.Fatalf("unmatched counts: %+v", d)
	}
	if math.Abs(d.TimeErrMean-0.5) > 1e-12 || math.Abs(d.TimeErrMax-0.5) > 1e-12 {
		t.Fatalf("time error: %+v", d)
	}
	if d.InSync() {
		t.Fatal("diff with missing event reported in sync")
	}
}

// TestQuantile: nearest-rank behaviour on small samples.
func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	if q := Quantile(xs, 0.95); q != 5 {
		t.Fatalf("p95 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("p50 = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty = %v", q)
	}
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}
