// writer.go serializes traces. JSONL: a header object line, one event object
// per line, and a {"end":true,"events":N} footer. Binary: "JWTR" magic, a
// version byte, the JSON header length-prefixed, then varint-packed events
// terminated by a zero kind byte and the event count. The footer/count makes
// truncation detectable in both encodings.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// binaryMagic opens every binary trace; JSONL traces open with '{'.
var binaryMagic = [4]byte{'J', 'W', 'T', 'R'}

// footer terminates a JSONL trace.
type footer struct {
	End    bool `json:"end"`
	Events int  `json:"events"`
}

// BinaryExt is the conventional file extension for the binary encoding;
// WriteFile and ReadFile key on it.
const BinaryExt = ".jtb"

// Write emits t as JSONL. The header is validated against the events first,
// so a malformed recording never reaches disk.
func Write(w io.Writer, t *Trace) error {
	if err := Validate(t.Header, t.Events); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline JSONL needs
	if err := enc.Encode(t.Header); err != nil {
		return err
	}
	for i := range t.Events {
		if err := enc.Encode(&t.Events[i]); err != nil {
			return err
		}
	}
	if err := enc.Encode(footer{End: true, Events: len(t.Events)}); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBinary emits t in the compact binary encoding.
func WriteBinary(w io.Writer, t *Trace) error {
	if err := Validate(t.Header, t.Events); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, _, err := writeBinaryHeader(bw, t.Header); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	for i := range t.Events {
		if err := writeBinaryEvent(bw, putUvarint, &t.Events[i]); err != nil {
			return err
		}
	}
	// End marker: kind 0 followed by the event count.
	if err := bw.WriteByte(0); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	return bw.Flush()
}

// writeBinaryHeader emits the binary preamble (magic, version byte, length-
// prefixed JSON header) and returns the byte offset and length of the JSON
// payload within the stream, which StreamRecorder uses for its padded header
// rewrite on early-stopped runs.
func writeBinaryHeader(bw *bufio.Writer, h Header) (jsonOff, jsonLen int64, err error) {
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return 0, 0, err
	}
	if err := bw.WriteByte(FormatVersion); err != nil {
		return 0, 0, err
	}
	hdr, err := json.Marshal(h)
	if err != nil {
		return 0, 0, err
	}
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(hdr)))
	if _, err := bw.Write(scratch[:n]); err != nil {
		return 0, 0, err
	}
	if _, err := bw.Write(hdr); err != nil {
		return 0, 0, err
	}
	return int64(len(binaryMagic) + 1 + n), int64(len(hdr)), nil
}

func writeBinaryEvent(bw *bufio.Writer, putUvarint func(uint64) error, ev *Event) error {
	if err := bw.WriteByte(byte(ev.Kind)); err != nil {
		return err
	}
	var flags byte
	if ev.Dropped {
		flags |= 1
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	var tb [8]byte
	binary.LittleEndian.PutUint64(tb[:], math.Float64bits(ev.Time))
	if _, err := bw.Write(tb[:]); err != nil {
		return err
	}
	// Peer is shifted by one so -1 ("none") packs as a single zero byte.
	for _, v := range []uint64{
		uint64(ev.Node), uint64(ev.Peer + 1), uint64(ev.Iter),
		uint64(ev.Bytes), uint64(ev.ModelBytes), uint64(ev.MetaBytes),
		uint64(ev.LagMax), uint64(ev.LagN),
	} {
		if err := putUvarint(v); err != nil {
			return err
		}
	}
	if ev.Kind == KindAggregate {
		binary.LittleEndian.PutUint64(tb[:], math.Float64bits(ev.LagMean))
		if _, err := bw.Write(tb[:]); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes t to path, choosing the encoding by extension: BinaryExt
// selects binary, everything else JSONL.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, BinaryExt) {
		err = WriteBinary(f, t)
	} else {
		err = Write(f, t)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return nil
}
