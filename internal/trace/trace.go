// Package trace defines the versioned event-trace format shared by the
// simulated async scheduler and the real multi-process cluster runner: a
// header describing the run, followed by the executed schedule as a
// time-ordered event sequence (train-done, send, arrival, aggregate, leave,
// join, epoch) with iteration numbers, per-send byte breakdowns,
// per-aggregation staleness lags, and topology-rotation marks.
//
// Two encodings carry the same data: JSONL (one JSON object per line,
// greppable, diff-friendly) and a compact binary variant (varint-packed,
// roughly 5x smaller). Both end with an explicit footer carrying the event
// count so truncation is always detectable. Readers validate strictly and
// report typed errors (ErrNotTrace, ErrVersion, ErrTruncated, ErrCorrupt).
//
// A recorded trace is a complete, authoritative schedule: feeding it back
// into the async engine (see Replayer and simulation.AsyncConfig.Replay)
// reproduces the run event for event, or re-costs a wall-clock trace captured
// on a real cluster through the simulator's byte ledger.
package trace

import (
	"errors"
	"fmt"
	"math"
)

// FormatName identifies trace files in the JSONL header line.
const FormatName = "jwins-trace"

// FormatVersion is the current trace format version. Readers reject other
// versions with ErrVersion rather than guessing.
const FormatVersion = 1

// Typed reader errors. Wrapped errors add positional detail; match with
// errors.Is.
var (
	// ErrNotTrace marks input that is not a trace file at all.
	ErrNotTrace = errors.New("trace: not a trace file")
	// ErrVersion marks a trace written by an unsupported format version.
	ErrVersion = errors.New("trace: unsupported format version")
	// ErrTruncated marks a trace whose footer is missing or short — the file
	// was cut off mid-write.
	ErrTruncated = errors.New("trace: truncated")
	// ErrCorrupt marks structurally invalid content: unknown event kinds,
	// out-of-range nodes, time regressions, or a footer count mismatch.
	ErrCorrupt = errors.New("trace: corrupt")
)

// Kind enumerates trace event types.
type Kind uint8

// Event kinds. KindTrainDone, KindArrival, KindLeave, KindJoin, and
// KindEpoch are the scheduler's authoritative events (a Replayer feeds them
// back as the schedule); KindSend and KindAggregate are derived observations
// used for byte accounting and staleness analysis.
const (
	KindTrainDone Kind = iota + 1
	KindSend
	KindArrival
	KindAggregate
	KindLeave
	KindJoin
	// KindEpoch marks a topology rotation: the run entered epoch Iter at
	// Time. Node is 0 by convention (the event is global), Peer -1.
	KindEpoch
	// KindDeadline marks a straggler-dropping deadline firing for Node's
	// iteration Iter (the deadline aggregation policy). Part of the
	// authoritative schedule: a replay consumes recorded deadline times
	// instead of re-deriving them from hardware profiles.
	KindDeadline
	kindEnd // exclusive upper bound for validation
)

var kindNames = map[Kind]string{
	KindTrainDone: "train-done",
	KindSend:      "send",
	KindArrival:   "arrival",
	KindAggregate: "aggregate",
	KindLeave:     "leave",
	KindJoin:      "join",
	KindEpoch:     "epoch",
	KindDeadline:  "deadline",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// String implements fmt.Stringer.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a known event kind.
func (k Kind) Valid() bool { return k >= KindTrainDone && k < kindEnd }

// MarshalJSON encodes the kind as its short name.
func (k Kind) MarshalJSON() ([]byte, error) {
	n, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("trace: cannot marshal %v", k)
	}
	return []byte(`"` + n + `"`), nil
}

// UnmarshalJSON decodes a short kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("trace: kind must be a string, got %s", b)
	}
	v, ok := kindByName[string(b[1:len(b)-1])]
	if !ok {
		return fmt.Errorf("trace: unknown kind %s", b)
	}
	*k = v
	return nil
}

// Header describes the run a trace was captured from.
type Header struct {
	// Format is FormatName; readers reject anything else.
	Format string `json:"format"`
	// Version is FormatVersion at write time.
	Version int `json:"version"`
	// Nodes is the fleet size; every event's Node/Peer must be below it.
	Nodes int `json:"nodes"`
	// Rounds is the per-node iteration budget of the recorded run.
	Rounds int `json:"rounds"`
	// Source is "sim" for simulated schedules (timestamps are simulated
	// seconds) or "cluster" for real runs (wall-clock seconds since the
	// coordinator's start signal).
	Source string `json:"source"`
	// Policy is the aggregation policy: "barrier", "gossip", "bounded"
	// (bounded staleness), or "deadline" (straggler-dropping barrier).
	// Bounded/deadline parameters travel in Meta (policy_k, policy_tau,
	// policy_adaptive, policy_deadline_factor) so replays can verify them.
	Policy string `json:"policy"`
	// Meta carries free-form run parameters (dataset, scale, algo, seed...)
	// so tools can rebuild the fleet for replay without extra flags.
	Meta map[string]string `json:"meta,omitempty"`
}

// Trace sources.
const (
	SourceSim     = "sim"
	SourceCluster = "cluster"
)

// Aggregation policies.
const (
	PolicyBarrier  = "barrier"
	PolicyGossip   = "gossip"
	PolicyBounded  = "bounded"
	PolicyDeadline = "deadline"
)

// Event is one entry of the executed schedule. Field use by kind:
//
//	train-done  Node trained iteration Iter (Time = compute finished)
//	send        Node sent its Iter payload to Peer (bytes = payload+framing,
//	            split into model and metadata; Dropped marks a send whose
//	            delivery was lost — the sender still pays)
//	arrival     Node received Peer's Iter payload (or its drop notice)
//	aggregate   Node merged its Iter neighborhood; LagMax/LagMean/LagN
//	            summarize the iteration lag (staleness) of merged payloads
//	leave/join  Node left or rejoined the run (churn)
//	epoch       the communication topology rotated into epoch Iter
//	            (Node is 0 by convention: the change is global)
//	deadline    Node's straggler-dropping deadline for iteration Iter fired
type Event struct {
	// Time is seconds since run start (simulated or wall-clock per
	// Header.Source). Within a trace, times are non-decreasing.
	Time float64 `json:"t"`
	Kind Kind    `json:"k"`
	// Node is the subject: trainer, sender, receiver, aggregator, or churner.
	Node int `json:"n"`
	// Peer is the counterpart (receiver for send, sender for arrival), or -1
	// when not applicable.
	Peer int `json:"p"`
	// Iter is the iteration the event belongs to.
	Iter int `json:"i"`
	// Dropped marks lost deliveries (send and arrival only).
	Dropped bool `json:"d,omitempty"`
	// Bytes/ModelBytes/MetaBytes are the send's wire cost (send only).
	Bytes      int `json:"b,omitempty"`
	ModelBytes int `json:"bm,omitempty"`
	MetaBytes  int `json:"bx,omitempty"`
	// LagMax/LagMean/LagN summarize staleness at an aggregation: per merged
	// payload, lag = aggregator's iteration - payload's iteration, clamped at
	// zero (a neighbor running ahead is not stale). LagN counts payloads.
	LagMax  int     `json:"lx,omitempty"`
	LagMean float64 `json:"lm,omitempty"`
	LagN    int     `json:"ln,omitempty"`
}

// Trace is a fully-read trace: header plus the complete event sequence.
type Trace struct {
	Header Header
	Events []Event
}

// Duration returns the last event's timestamp (0 for an empty trace).
func (t *Trace) Duration() float64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Time
}

// Validate checks header sanity and every event against the header: known
// kinds, in-range node/peer ids, non-negative iterations and byte counts,
// and non-decreasing timestamps. Violations return ErrCorrupt (wrapped with
// the offending event index).
func Validate(h Header, events []Event) error {
	if err := validateHeader(h); err != nil {
		return err
	}
	prev := math.Inf(-1)
	for i := range events {
		if err := validateEvent(h, i, &events[i], prev); err != nil {
			return err
		}
		prev = events[i].Time
	}
	return nil
}

// validateHeader checks the header alone (format, version, node count).
func validateHeader(h Header) error {
	if h.Format != FormatName {
		return fmt.Errorf("%w: header format %q", ErrNotTrace, h.Format)
	}
	if h.Version != FormatVersion {
		return fmt.Errorf("%w: %d (reader supports %d)", ErrVersion, h.Version, FormatVersion)
	}
	if h.Nodes <= 0 {
		return fmt.Errorf("%w: header declares %d nodes", ErrCorrupt, h.Nodes)
	}
	return nil
}

// validateEvent checks one event (index i, for error messages) against the
// header and the previous event's timestamp. Streaming readers and writers
// share it with Validate so incremental and whole-trace validation agree.
func validateEvent(h Header, i int, ev *Event, prev float64) error {
	if !ev.Kind.Valid() {
		return fmt.Errorf("%w: event %d has unknown kind %d", ErrCorrupt, i, uint8(ev.Kind))
	}
	if math.IsNaN(ev.Time) || ev.Time < prev {
		return fmt.Errorf("%w: event %d time %v regresses below %v", ErrCorrupt, i, ev.Time, prev)
	}
	if ev.Node < 0 || ev.Node >= h.Nodes {
		return fmt.Errorf("%w: event %d node %d out of range [0,%d)", ErrCorrupt, i, ev.Node, h.Nodes)
	}
	switch ev.Kind {
	case KindSend, KindArrival:
		if ev.Peer < 0 || ev.Peer >= h.Nodes {
			return fmt.Errorf("%w: event %d peer %d out of range [0,%d)", ErrCorrupt, i, ev.Peer, h.Nodes)
		}
	default:
		if ev.Peer != -1 {
			return fmt.Errorf("%w: event %d (%v) has peer %d, want -1", ErrCorrupt, i, ev.Kind, ev.Peer)
		}
	}
	if ev.Iter < 0 {
		return fmt.Errorf("%w: event %d iteration %d negative", ErrCorrupt, i, ev.Iter)
	}
	if ev.Bytes < 0 || ev.ModelBytes < 0 || ev.MetaBytes < 0 || ev.LagMax < 0 || ev.LagN < 0 {
		return fmt.Errorf("%w: event %d has negative counters", ErrCorrupt, i)
	}
	return nil
}

// Sink consumes trace events as a run executes: the recorder hook of the
// async engine (simulation.AsyncConfig.Record) and the cluster worker loop.
// Recorder retains the full trace in memory; StreamRecorder writes it out
// incrementally with bounded buffers, the only option that scales to
// 1024-node schedules.
type Sink interface {
	Record(Event)
}

// RoundsSetter is implemented by sinks that can adjust the header's
// advertised round budget after recording started: a run stopped early (at
// target accuracy) holds only the executed prefix, and replaying it must not
// chase rounds that were never scheduled.
type RoundsSetter interface {
	SetRounds(rounds int)
}

// Recorder accumulates a trace in memory as a run executes. The zero-cost
// hook for the async engine (simulation.AsyncConfig.Record) and the cluster
// worker loop; write the result out with Write/WriteBinary/WriteFile.
type Recorder struct {
	t Trace
}

var (
	_ Sink         = (*Recorder)(nil)
	_ RoundsSetter = (*Recorder)(nil)
)

// NewRecorder starts a recorder. Format and Version are filled in; the caller
// provides the run description.
func NewRecorder(h Header) *Recorder {
	h.Format = FormatName
	h.Version = FormatVersion
	return &Recorder{t: Trace{Header: h}}
}

// Record appends one event.
func (r *Recorder) Record(ev Event) {
	r.t.Events = append(r.t.Events, ev)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.t.Events) }

// SetRounds implements RoundsSetter.
func (r *Recorder) SetRounds(rounds int) { r.t.Header.Rounds = rounds }

// Trace returns the recorded trace. The recorder retains ownership; callers
// must not mutate it while recording continues.
func (r *Recorder) Trace() *Trace { return &r.t }
