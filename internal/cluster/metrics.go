// metrics.go is the cluster counterpart of the engine's telemetry: a worker
// streams its schedule progress — rounds, sends, arrivals, wire bytes, wall-
// clock barrier waits — into an internal/metrics registry that jwins-node can
// serve live over HTTP (-telemetry-addr) while the run executes. Like the
// simulator's, the instrumentation is strictly observational: nothing reads a
// metric back, so the executed schedule (and the trace it reports) is
// identical with metrics on or off.
package cluster

import (
	"repro/internal/metrics"
)

// Worker metric names (Prometheus families).
const (
	// MetricWorkerRounds counts completed iterations (train + barrier +
	// aggregate); MetricWorkerIteration is the current iteration gauge.
	MetricWorkerRounds    = "jwins_worker_rounds_total"
	MetricWorkerIteration = "jwins_worker_iteration"
	// MetricWorkerSends / MetricWorkerArrivals count data-plane payloads.
	MetricWorkerSends    = "jwins_worker_sends_total"
	MetricWorkerArrivals = "jwins_worker_arrivals_total"
	// MetricWorkerBytes is cumulative wire bytes sent (payload + framing).
	MetricWorkerBytes = "jwins_worker_bytes_total"
	// MetricWorkerBarrierWait is the wall-clock seconds per iteration spent
	// blocked on the neighborhood barrier (broadcast done → inbox full).
	MetricWorkerBarrierWait = "jwins_worker_barrier_wait_seconds"
)

// WorkerMetrics bundles a worker's pre-registered metrics. Create one with
// NewWorkerMetrics, pass it via WorkerOptions.Metrics, and serve Registry()
// with metrics.Serve for live scraping.
type WorkerMetrics struct {
	reg *metrics.Registry

	rounds    *metrics.Counter
	iteration *metrics.Gauge
	sends     *metrics.Counter
	arrivals  *metrics.Counter
	bytes     *metrics.Counter
	wait      *metrics.Histogram
}

// NewWorkerMetrics builds a WorkerMetrics on a fresh registry.
func NewWorkerMetrics() *WorkerMetrics {
	m := &WorkerMetrics{reg: metrics.New()}
	m.rounds = m.reg.Counter(MetricWorkerRounds, "completed schedule iterations")
	m.iteration = m.reg.Gauge(MetricWorkerIteration, "current schedule iteration")
	m.sends = m.reg.Counter(MetricWorkerSends, "data-plane payloads sent")
	m.arrivals = m.reg.Counter(MetricWorkerArrivals, "data-plane payloads received")
	m.bytes = m.reg.Counter(MetricWorkerBytes, "cumulative wire bytes sent (payload+framing)")
	m.wait = m.reg.Histogram(MetricWorkerBarrierWait, "wall-clock seconds blocked on the neighborhood barrier",
		[]float64{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30})
	return m
}

// Registry exposes the underlying registry for metrics.Serve or a custom
// exposition.
func (m *WorkerMetrics) Registry() *metrics.Registry { return m.reg }

// Snapshot returns a point-in-time copy of every metric.
func (m *WorkerMetrics) Snapshot() *metrics.Snapshot { return m.reg.Snapshot() }
