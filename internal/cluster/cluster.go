// Package cluster executes the event-driven schedule over real sockets
// across processes: a coordinator hands out node ids and the address map,
// fires a shared start signal, and merges per-worker event logs into one
// wall-clock trace in the internal/trace format; workers run the local
// barrier schedule (train, broadcast over the timestamped TCP mesh, wait for
// the neighborhood, aggregate) and stamp observed SentAt/ArriveAt times.
//
// The resulting trace replays through simulation.AsyncEngine (the fleet
// build is deterministic in the seed, so the replayed trajectory and byte
// ledger must match the cluster's exactly), and diffs against a simulated
// trace of the same configuration to quantify the time model's error —
// closing the sim-to-real loop.
//
// cmd/jwins-node wraps both roles for multi-process/multi-machine runs; the
// package API runs in-process for tests.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vec"
)

// RunConfig describes one cluster run. Every worker receives it from the
// coordinator and rebuilds the identical fleet from it (identical initial
// weights and per-node RNG streams — the same construction the simulator
// uses), so a worker only ever needs the coordinator's address.
type RunConfig struct {
	Dataset string // workload name (cifar10, movielens, ...)
	Scale   string // micro, small, or paper
	Algo    string // algorithm name (jwins, full-sharing, choco, ...)
	Nodes   int    // fleet size == worker count
	Rounds  int    // per-node iteration budget
	Seed    uint64 // root seed; must match for replay parity
}

// Validate checks the configuration without building the workload.
func (c RunConfig) Validate() error {
	if c.Nodes <= 1 {
		return fmt.Errorf("cluster: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("cluster: rounds must be positive, got %d", c.Rounds)
	}
	if _, err := experiments.ParseScale(c.Scale); err != nil {
		return err
	}
	return nil
}

// Header builds the trace header describing this run; Meta carries enough to
// rebuild the fleet for replay (see experiments.ReplayTrace).
func (c RunConfig) Header() trace.Header {
	return trace.Header{
		Nodes: c.Nodes, Rounds: c.Rounds,
		Source: trace.SourceCluster, Policy: trace.PolicyBarrier,
		Meta: map[string]string{
			"dataset": c.Dataset,
			"scale":   c.Scale,
			"algo":    c.Algo,
			"seed":    strconv.FormatUint(c.Seed, 10),
			// The cluster runner executes a static local-barrier schedule;
			// recording that explicitly lets replays validate their topology
			// instead of guessing from the absence of epoch events.
			"topology":  "static",
			"epoch_sec": "0",
		},
	}
}

// buildRun constructs the deterministic run state shared by every worker:
// the workload, the full fleet (cheap at cluster scales, and the only way to
// consume the root RNG exactly like the simulator), and the topology.
func buildRun(cfg RunConfig) (*experiments.Workload, []core.Node, *topology.Graph, []topology.Weights, error) {
	scale, err := experiments.ParseScale(cfg.Scale)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	w, err := experiments.NewWorkload(cfg.Dataset, scale, cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	nodes, err := experiments.BuildFleet(w, experiments.AlgoSpec{Kind: experiments.Algo(cfg.Algo)}, cfg.Seed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	// The same topology seed the simulator's run path derives ("topo").
	g, err := topology.Regular(w.Nodes, w.Degree, vec.NewRNG(cfg.Seed^0x746f706f))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return w, nodes, g, topology.MetropolisHastings(g), nil
}

// ctrlMsg is the single control-plane message shape; Type selects the fields
// in use (hello → assign → ready → start → report → bye).
type ctrlMsg struct {
	Type   string        `json:"type"`
	ID     int           `json:"id,omitempty"`
	Cfg    *RunConfig    `json:"cfg,omitempty"`
	Addr   string        `json:"addr,omitempty"`
	Addrs  []string      `json:"addrs,omitempty"`
	Epoch  int64         `json:"epoch,omitempty"` // unix nanos of the start signal
	Err    string        `json:"err,omitempty"`
	Events []trace.Event `json:"events,omitempty"`
}

// expect reads the next control message and checks its type.
func expect(c *transport.ControlConn, want string) (ctrlMsg, error) {
	var m ctrlMsg
	if err := c.Recv(&m); err != nil {
		return m, err
	}
	if m.Type != want {
		return m, fmt.Errorf("cluster: expected %q message, got %q", want, m.Type)
	}
	return m, nil
}

// ErrStopped reports that Coordinator.Run unwound because Stop was called
// (jwins-node wires SIGINT/SIGTERM to it) rather than through a protocol
// failure.
var ErrStopped = errors.New("cluster: coordinator stopped")

// Coordinator runs the control plane of one cluster run.
type Coordinator struct {
	cfg RunConfig
	srv *transport.ControlServer
	// Timeout bounds each control-plane phase per worker (default 5m; the
	// report phase spans the whole training run).
	Timeout time.Duration

	mu      sync.Mutex
	stopped bool
	conns   []*transport.ControlConn
}

// NewCoordinator starts listening for workers. Use "host:0" and Addr to
// bind an ephemeral port in tests.
func NewCoordinator(listenAddr string, cfg RunConfig) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	srv, err := transport.ListenControl(listenAddr)
	if err != nil {
		return nil, err
	}
	return &Coordinator{cfg: cfg, srv: srv, Timeout: 5 * time.Minute}, nil
}

// Addr returns the control listen address workers dial.
func (c *Coordinator) Addr() string { return c.srv.Addr() }

// Stop aborts an in-flight Run from another goroutine: the control listener
// and every accepted worker connection close, so whatever phase Run is
// blocked in fails promptly and Run returns ErrStopped. Safe to call more
// than once, and before or after Run finishes.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	c.stopped = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	c.srv.Close()
	for _, conn := range conns {
		conn.Close()
	}
}

// trackConn registers an accepted worker connection so Stop can cut it.
func (c *Coordinator) trackConn(conn *transport.ControlConn) {
	c.mu.Lock()
	stopped := c.stopped
	if !stopped {
		c.conns = append(c.conns, conn)
	}
	c.mu.Unlock()
	if stopped {
		conn.Close()
	}
}

func (c *Coordinator) wasStopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped
}

// Run drives one full cluster run: registration, address exchange, start
// signal, report collection, and trace merge. It blocks until every worker
// reported (or a phase times out) and returns the merged, validated trace.
// A concurrent Stop makes it return ErrStopped.
func (c *Coordinator) Run() (*trace.Trace, error) {
	tr, err := c.run()
	if err != nil && c.wasStopped() {
		return nil, ErrStopped
	}
	return tr, err
}

func (c *Coordinator) run() (*trace.Trace, error) {
	defer c.srv.Close()
	n := c.cfg.Nodes
	conns := make([]*transport.ControlConn, n)
	defer func() {
		for _, conn := range conns {
			if conn != nil {
				conn.Close()
			}
		}
	}()

	// Phase 1: registration + id assignment.
	for i := 0; i < n; i++ {
		conn, err := c.srv.Accept()
		if err != nil {
			return nil, err
		}
		conns[i] = conn
		c.trackConn(conn)
		conn.SetDeadline(time.Now().Add(c.Timeout))
		if _, err := expect(conn, "hello"); err != nil {
			return nil, err
		}
		cfg := c.cfg
		if err := conn.Send(ctrlMsg{Type: "assign", ID: i, Cfg: &cfg}); err != nil {
			return nil, err
		}
	}

	// Phase 2: collect data-plane addresses (workers build their fleet and
	// endpoint before answering).
	addrs := make([]string, n)
	for i, conn := range conns {
		conn.SetDeadline(time.Now().Add(c.Timeout))
		m, err := expect(conn, "ready")
		if err != nil {
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
		addrs[i] = m.Addr
	}

	// Phase 3: the start signal carries the shared epoch every worker stamps
	// its event times against.
	epoch := time.Now().UnixNano()
	for i, conn := range conns {
		conn.SetDeadline(time.Now().Add(c.Timeout))
		if err := conn.Send(ctrlMsg{Type: "start", Addrs: addrs, Epoch: epoch}); err != nil {
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
	}

	// Phase 4: collect reports. Workers keep their data plane open until the
	// bye in phase 5, so stragglers can still drain in-flight payloads.
	events := make([]trace.Event, 0, n*c.cfg.Rounds*8)
	for i, conn := range conns {
		conn.SetDeadline(time.Now().Add(c.Timeout))
		m, err := expect(conn, "report")
		if err != nil {
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
		if m.Err != "" {
			return nil, fmt.Errorf("cluster: worker %d failed: %s", i, m.Err)
		}
		events = append(events, m.Events...)
	}

	// Phase 5: release the workers.
	for _, conn := range conns {
		conn.SetDeadline(time.Now().Add(c.Timeout))
		if err := conn.Send(ctrlMsg{Type: "bye"}); err != nil {
			return nil, err
		}
	}

	return mergeTrace(c.cfg, events)
}

// mergeTrace orders the per-worker logs into one globally time-sorted trace
// and validates it. Per-worker logs are monotone; across workers, ties (and
// sub-clock-resolution skew) break deterministically.
func mergeTrace(cfg RunConfig, events []trace.Event) (*trace.Trace, error) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Iter != b.Iter {
			return a.Iter < b.Iter
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Peer < b.Peer
	})
	h := cfg.Header()
	h.Format = trace.FormatName
	h.Version = trace.FormatVersion
	if err := trace.Validate(h, events); err != nil {
		return nil, fmt.Errorf("cluster: merged trace invalid: %w", err)
	}
	return &trace.Trace{Header: h, Events: events}, nil
}
