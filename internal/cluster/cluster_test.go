package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/trace"
)

// runLoopbackCluster spins up a coordinator and cfg.Nodes in-process workers
// on 127.0.0.1 and returns the merged trace.
func runLoopbackCluster(t *testing.T, cfg RunConfig) *trace.Trace {
	t.Helper()
	coord, err := NewCoordinator("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord.Timeout = 2 * time.Minute
	workerErrs := make(chan error, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		go func() {
			workerErrs <- RunWorker(coord.Addr(), "127.0.0.1:0", 2*time.Minute)
		}()
	}
	tr, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Nodes; i++ {
		if err := <-workerErrs; err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestClusterLoopbackReplayParity: the acceptance scenario. A 4-node
// loopback cluster runs the barrier schedule over real sockets; the merged
// wall-clock trace must validate, carry the full schedule, and — because the
// fleet build is deterministic in the seed — replay through the simulator
// into the identical byte ledger and per-node event ordering.
func TestClusterLoopbackReplayParity(t *testing.T) {
	cfg := RunConfig{Dataset: "cifar10", Scale: "micro", Algo: "jwins", Nodes: 4, Rounds: 5, Seed: 11}
	tr := runLoopbackCluster(t, cfg)

	if err := trace.Validate(tr.Header, tr.Events); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	stats := trace.ComputeStats(tr)
	wantAggs := cfg.Nodes * cfg.Rounds
	if stats.ByKind[trace.KindTrainDone] != wantAggs || stats.ByKind[trace.KindAggregate] != wantAggs {
		t.Fatalf("schedule incomplete: %v (want %d train-done and aggregate)", stats.ByKind, wantAggs)
	}
	if stats.ByKind[trace.KindSend] == 0 || stats.ByKind[trace.KindSend] != stats.ByKind[trace.KindArrival] {
		t.Fatalf("sends (%d) and arrivals (%d) must pair on a lossless loopback",
			stats.ByKind[trace.KindSend], stats.ByKind[trace.KindArrival])
	}
	if stats.Duration <= 0 {
		t.Fatalf("wall-clock duration %v", stats.Duration)
	}

	// Replay the observed schedule through the simulator.
	res, replayed, err := experiments.ReplayTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != cfg.Rounds {
		t.Fatalf("replay emitted %d/%d rows", len(res.Rounds), cfg.Rounds)
	}
	// Deterministic fleet + barrier schedule => identical payload bytes.
	if res.TotalBytes != stats.TotalBytes {
		t.Fatalf("replayed ledger %d bytes, cluster observed %d", res.TotalBytes, stats.TotalBytes)
	}
	d := trace.Compare(replayed, tr)
	if !d.InSync() {
		t.Fatalf("replay diverges from observed schedule: %+v", d)
	}
	// The authoritative events reuse recorded wall-clock times, so the only
	// time error is on derived events (sends/aggregates fire at the engine's
	// trigger time, a hair before the cluster's own stamps).
	if d.TimeErrMax > 1.0 {
		t.Fatalf("per-event time error implausibly large: %+v", d)
	}
	// The replay must also carry the wall-clock span into simulated time.
	if res.SimTime <= 0 {
		t.Fatalf("replayed SimTime = %v", res.SimTime)
	}
}

// TestClusterWorkerMetrics: a loopback run with live worker metrics must
// count the full schedule — and expose it as non-empty Prometheus text. The
// instrumentation is observational, so the merged trace is as complete as an
// unmetered run's.
func TestClusterWorkerMetrics(t *testing.T) {
	cfg := RunConfig{Dataset: "cifar10", Scale: "micro", Algo: "jwins", Nodes: 4, Rounds: 3, Seed: 7}
	coord, err := NewCoordinator("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord.Timeout = 2 * time.Minute
	wms := make([]*WorkerMetrics, cfg.Nodes)
	workerErrs := make(chan error, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		wms[i] = NewWorkerMetrics()
		go func(wm *WorkerMetrics) {
			workerErrs <- RunWorkerOpts(coord.Addr(), "127.0.0.1:0", WorkerOptions{
				Timeout: 2 * time.Minute, Metrics: wm,
			})
		}(wms[i])
	}
	tr, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Nodes; i++ {
		if err := <-workerErrs; err != nil {
			t.Fatal(err)
		}
	}
	stats := trace.ComputeStats(tr)
	var sends, bytes int64
	for i, wm := range wms {
		snap := wm.Snapshot()
		if got := snap.Counter(MetricWorkerRounds); got != int64(cfg.Rounds) {
			t.Fatalf("worker %d: rounds counter = %d, want %d", i, got, cfg.Rounds)
		}
		if got := snap.Counter(MetricWorkerArrivals); got == 0 {
			t.Fatalf("worker %d: no arrivals counted", i)
		}
		wait, ok := snap.Histogram(MetricWorkerBarrierWait)
		if !ok || wait.Count != int64(cfg.Rounds) {
			t.Fatalf("worker %d: barrier-wait observations = %d (ok=%v), want %d", i, wait.Count, ok, cfg.Rounds)
		}
		sends += snap.Counter(MetricWorkerSends)
		bytes += snap.Counter(MetricWorkerBytes)

		var expo strings.Builder
		if err := wm.Registry().WritePrometheus(&expo); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(expo.String(), MetricWorkerRounds) {
			t.Fatalf("worker %d: exposition lacks %s:\n%s", i, MetricWorkerRounds, expo.String())
		}
	}
	// The fleet-wide counters must agree with the merged trace's ledger.
	if sends != int64(stats.ByKind[trace.KindSend]) {
		t.Fatalf("metered sends %d, trace records %d", sends, stats.ByKind[trace.KindSend])
	}
	if bytes != stats.TotalBytes {
		t.Fatalf("metered bytes %d, trace ledger %d", bytes, stats.TotalBytes)
	}
}

// TestClusterCoordinatorStop: Stop from another goroutine unwinds a Run
// blocked on worker registration, promptly and with the typed error.
func TestClusterCoordinatorStop(t *testing.T) {
	cfg := RunConfig{Dataset: "cifar10", Scale: "micro", Algo: "jwins", Nodes: 2, Rounds: 2, Seed: 5}
	coord, err := NewCoordinator("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := coord.Run()
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let Run reach Accept
	coord.Stop()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("Run returned %v, want ErrStopped", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not unwind after Stop")
	}
	coord.Stop() // idempotent
}

// TestClusterWorkerInterrupt: firing WorkerOptions.Interrupt mid-protocol
// closes the worker's sockets and surfaces ErrInterrupted — the SIGINT path
// of jwins-node, minus the signal.
func TestClusterWorkerInterrupt(t *testing.T) {
	// Four-node config but only one worker ever dials: the worker blocks
	// waiting for the start signal that cannot come.
	cfg := RunConfig{Dataset: "cifar10", Scale: "micro", Algo: "jwins", Nodes: 4, Rounds: 2, Seed: 5}
	coord, err := NewCoordinator("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	coordDone := make(chan struct{})
	go func() {
		coord.Run()
		close(coordDone)
	}()
	intr := make(chan struct{})
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorkerOpts(coord.Addr(), "127.0.0.1:0", WorkerOptions{
			Timeout: 2 * time.Minute, Interrupt: intr,
		})
	}()
	time.Sleep(100 * time.Millisecond) // let the worker reach a blocking phase
	close(intr)
	select {
	case err := <-workerDone:
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("worker returned %v, want ErrInterrupted", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not unwind after interrupt")
	}
	coord.Stop()
	select {
	case <-coordDone:
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not unwind after Stop")
	}
}

// TestClusterRejectsBadConfig: validation runs before any socket work.
func TestClusterRejectsBadConfig(t *testing.T) {
	cases := []RunConfig{
		{Dataset: "cifar10", Scale: "micro", Algo: "jwins", Nodes: 1, Rounds: 3, Seed: 1},
		{Dataset: "cifar10", Scale: "micro", Algo: "jwins", Nodes: 4, Rounds: 0, Seed: 1},
		{Dataset: "cifar10", Scale: "nano", Algo: "jwins", Nodes: 4, Rounds: 3, Seed: 1},
	}
	for i, cfg := range cases {
		if _, err := NewCoordinator("127.0.0.1:0", cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

// TestClusterWorkerFailurePropagates: a worker that cannot build its fleet
// reports the failure; the coordinator surfaces it instead of hanging.
func TestClusterWorkerFailurePropagates(t *testing.T) {
	cfg := RunConfig{Dataset: "cifar10", Scale: "micro", Algo: "jwins", Nodes: 2, Rounds: 2, Seed: 3}
	coord, err := NewCoordinator("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord.Timeout = 30 * time.Second
	// One honest worker, one that reports a failure by dialing with a bad
	// data-plane listen address.
	done := make(chan struct{})
	go func() {
		RunWorker(coord.Addr(), "127.0.0.1:0", 30*time.Second)
		close(done)
	}()
	go RunWorker(coord.Addr(), "256.256.256.256:1", 30*time.Second)
	if _, err := coord.Run(); err == nil {
		t.Fatal("coordinator ignored a failing worker")
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("honest worker did not unwind")
	}
}
