// worker.go is one cluster node's run loop: register with the coordinator,
// rebuild the deterministic fleet, open a timestamped TCP endpoint, then
// execute the local-barrier schedule for the iteration budget — training,
// broadcasting to the neighborhood, buffering early arrivals, aggregating —
// while logging every train-done/send/arrival/aggregate as a trace event
// stamped with wall-clock seconds since the coordinator's start signal.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/transport"
)

// ErrInterrupted reports that a worker unwound because its
// WorkerOptions.Interrupt channel fired (jwins-node wires SIGINT/SIGTERM to
// it): the control connection and data plane were closed, so whatever phase
// the worker was blocked in failed promptly.
var ErrInterrupted = errors.New("cluster: worker interrupted")

// WorkerOptions tunes RunWorkerOpts beyond the two required addresses.
type WorkerOptions struct {
	// Timeout bounds each control-plane phase (default 5m).
	Timeout time.Duration
	// Metrics, if set, streams schedule progress into the given registry as
	// the run executes (observational only; see NewWorkerMetrics).
	Metrics *WorkerMetrics
	// Interrupt, if non-nil, aborts the worker when it becomes readable or
	// closed: every open connection is shut so blocking reads fail, and the
	// worker returns ErrInterrupted.
	Interrupt <-chan struct{}
}

// interruptGuard closes registered resources once fire is called — including
// resources registered after the fact, so a worker that opens its data plane
// mid-interrupt still unwinds.
type interruptGuard struct {
	mu      sync.Mutex
	fired   bool
	closers []io.Closer
}

func (g *interruptGuard) add(c io.Closer) {
	g.mu.Lock()
	fired := g.fired
	if !fired {
		g.closers = append(g.closers, c)
	}
	g.mu.Unlock()
	if fired {
		c.Close()
	}
}

func (g *interruptGuard) fire() {
	g.mu.Lock()
	g.fired = true
	closers := g.closers
	g.closers = nil
	g.mu.Unlock()
	for _, c := range closers {
		c.Close()
	}
}

func (g *interruptGuard) wasFired() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fired
}

// RunWorker executes one worker against the coordinator at coordAddr.
// dataListen is the data-plane listen address ("127.0.0.1:0" on loopback; a
// routable host:0 across machines). It blocks until the coordinator releases
// the run.
func RunWorker(coordAddr, dataListen string, timeout time.Duration) error {
	return RunWorkerOpts(coordAddr, dataListen, WorkerOptions{Timeout: timeout})
}

// RunWorkerOpts is RunWorker with live metrics and interrupt support.
func RunWorkerOpts(coordAddr, dataListen string, opts WorkerOptions) error {
	guard := &interruptGuard{}
	if opts.Interrupt != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-opts.Interrupt:
				guard.fire()
			case <-stop:
			}
		}()
	}
	err := runWorker(coordAddr, dataListen, opts, guard)
	if err != nil && guard.wasFired() {
		return ErrInterrupted
	}
	return err
}

func runWorker(coordAddr, dataListen string, opts WorkerOptions, guard *interruptGuard) error {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	conn, err := transport.DialControl(coordAddr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	guard.add(conn)

	conn.SetDeadline(time.Now().Add(timeout))
	if err := conn.Send(ctrlMsg{Type: "hello"}); err != nil {
		return err
	}
	assign, err := expect(conn, "assign")
	if err != nil {
		return err
	}
	if assign.Cfg == nil {
		return fmt.Errorf("cluster: assign message carries no config")
	}
	cfg := *assign.Cfg
	id := assign.ID

	_, nodes, g, weights, err := buildRun(cfg)
	if err != nil {
		return fmt.Errorf("cluster: worker %d build: %w", id, err)
	}
	addrs := make([]string, cfg.Nodes)
	addrs[id] = dataListen
	ep, err := transport.NewTCP(id, addrs)
	if err != nil {
		return fmt.Errorf("cluster: worker %d data plane: %w", id, err)
	}
	defer ep.Close()
	guard.add(ep)
	ep.EnableTimestamps()

	conn.SetDeadline(time.Now().Add(timeout))
	if err := conn.Send(ctrlMsg{Type: "ready", Addr: ep.Addr()}); err != nil {
		return err
	}
	start, err := expect(conn, "start")
	if err != nil {
		return err
	}
	if len(start.Addrs) != cfg.Nodes {
		return fmt.Errorf("cluster: start carries %d addrs for %d nodes", len(start.Addrs), cfg.Nodes)
	}
	for peer, addr := range start.Addrs {
		ep.SetPeerAddr(peer, addr)
	}

	events, runErr := runSchedule(id, cfg, nodes[id], g, weights[id], ep, start.Epoch, opts.Metrics)
	report := ctrlMsg{Type: "report", ID: id, Events: events}
	if runErr != nil {
		report.Err = runErr.Error()
		report.Events = nil
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if err := conn.Send(report); err != nil {
		return err
	}
	// Wait for the coordinator's release before closing the data plane, so a
	// straggling neighbor can still drain in-flight payloads from us.
	if _, err := expect(conn, "bye"); err != nil {
		return err
	}
	return runErr
}

// runSchedule is the worker's local-barrier loop. Event times are wall-clock
// seconds since the epoch; arrivals additionally carry the sender's in-frame
// SentAt through the timestamped mesh (stamped into Message.SentAt/ArriveAt,
// the trace's send/arrival pair).
func runSchedule(id int, cfg RunConfig, node core.Node, g *topology.Graph, w topology.Weights, ep *transport.TCP, epoch int64, wm *WorkerMetrics) ([]trace.Event, error) {
	now := func() float64 { return float64(time.Now().UnixNano()-epoch) / 1e9 }
	neighbors := g.Neighbors(id)
	deg := len(neighbors)
	events := make([]trace.Event, 0, cfg.Rounds*(2+2*deg))
	// Neighbors can run at most one iteration ahead (they block on our
	// payload before advancing), so early payloads are buffered per
	// iteration rather than dropped.
	pending := map[int]map[int][]byte{}

	for iter := 0; iter < cfg.Rounds; iter++ {
		if wm != nil {
			wm.iteration.Set(int64(iter))
		}
		node.LocalTrain()
		payload, bd, err := node.Share(iter)
		if err != nil {
			return nil, fmt.Errorf("node %d share: %w", id, err)
		}
		events = append(events, trace.Event{
			Time: now(), Kind: trace.KindTrainDone, Node: id, Peer: -1, Iter: iter,
		})
		for _, j := range neighbors {
			sentAt := now()
			if err := ep.Send(transport.Message{
				From: id, To: j, Round: iter, Payload: payload, SentAt: sentAt,
			}); err != nil {
				return nil, fmt.Errorf("node %d send to %d: %w", id, j, err)
			}
			events = append(events, trace.Event{
				Time: sentAt, Kind: trace.KindSend, Node: id, Peer: j, Iter: iter,
				Bytes:      len(payload) + transport.FrameOverhead,
				ModelBytes: bd.Model,
				MetaBytes:  bd.Meta + transport.FrameOverhead,
			})
			if wm != nil {
				wm.sends.Inc()
				wm.bytes.Add(int64(len(payload) + transport.FrameOverhead))
			}
		}

		inbox := pending[iter]
		if inbox == nil {
			inbox = map[int][]byte{}
		}
		delete(pending, iter)
		waitStart := now()
		for len(inbox) < deg {
			msg, err := ep.Recv(id)
			if err != nil {
				return nil, fmt.Errorf("node %d recv: %w", id, err)
			}
			msg.ArriveAt = now()
			events = append(events, trace.Event{
				Time: msg.ArriveAt, Kind: trace.KindArrival, Node: id, Peer: msg.From, Iter: msg.Round,
			})
			if wm != nil {
				wm.arrivals.Inc()
			}
			if msg.Round == iter {
				inbox[msg.From] = msg.Payload
			} else if msg.Round > iter {
				if pending[msg.Round] == nil {
					pending[msg.Round] = map[int][]byte{}
				}
				pending[msg.Round][msg.From] = msg.Payload
			} else {
				return nil, fmt.Errorf("node %d: stale payload for iteration %d while at %d", id, msg.Round, iter)
			}
		}
		if wm != nil {
			// The barrier wait proper: broadcast done → inbox full.
			wm.wait.Observe(now() - waitStart)
		}
		if err := node.Aggregate(iter, w, inbox); err != nil {
			return nil, fmt.Errorf("node %d aggregate: %w", id, err)
		}
		// The barrier consumed exactly current-iteration payloads: zero lag.
		events = append(events, trace.Event{
			Time: now(), Kind: trace.KindAggregate, Node: id, Peer: -1, Iter: iter,
			LagN: len(inbox),
		})
		if wm != nil {
			wm.rounds.Inc()
		}
	}
	return events, nil
}
