// Package choco implements the memory-efficient CHOCO-SGD algorithm of
// Koloskova, Stich & Jaggi (ICML 2019), the state-of-the-art
// communication-compressed decentralized learning baseline the paper
// compares against (Section IV-D). Each node keeps its own public replica
// x̂_i and the weighted neighborhood sum s_i = Σ_j w_ij x̂_j, shares a
// TopK-compressed difference q_i = Q(x^(t+1/2) - x̂_i), and applies the
// gossip correction x <- x^(t+1/2) + γ (s - x̂).
//
// Because the correctness of s depends on having integrated every past q_j of
// the *current* neighbor set, CHOCO breaks down under dynamic topologies —
// exactly the behaviour the paper reports in Figure 7.
package choco

import (
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/sparsify"
	"repro/internal/topology"
)

// Config parameterizes CHOCO-SGD.
type Config struct {
	// Fraction is the TopK compression budget per round (e.g. 0.20).
	Fraction float64
	// Gamma is the consensus step size; the paper tunes 0.6 for the 20%
	// budget and 0.1 for the 10% budget.
	Gamma float64
	// FloatCodec compresses the shared difference values (default flate32).
	FloatCodec codec.FloatCodec
}

// Node is one CHOCO-SGD participant. It implements core.Node.
type Node struct {
	id     int
	model  nn.Trainable
	loader *datasets.Loader
	opts   core.TrainOpts
	cfg    Config

	dim    int
	params []float64 // x^(t+1/2) after local training
	xhat   []float64 // x̂_i: own public replica
	s      []float64 // Σ_j w_ij x̂_j over the (fixed) neighborhood
	qSelf  []float64 // scratch: own quantized difference
}

var _ core.Node = (*Node)(nil)

// New builds a CHOCO-SGD node.
func New(id int, model nn.Trainable, loader *datasets.Loader, opts core.TrainOpts, cfg Config) (*Node, error) {
	if cfg.Fraction <= 0 || cfg.Fraction > 1 {
		return nil, fmt.Errorf("choco: compression fraction %v out of (0, 1]", cfg.Fraction)
	}
	if cfg.Gamma <= 0 {
		return nil, fmt.Errorf("choco: gamma must be positive, got %v", cfg.Gamma)
	}
	if cfg.FloatCodec == nil {
		cfg.FloatCodec = codec.PlaneFlate32{}
	}
	if opts.LR <= 0 || opts.LocalSteps <= 0 {
		return nil, fmt.Errorf("choco: invalid train opts %+v", opts)
	}
	dim := model.ParamCount()
	return &Node{
		id:     id,
		model:  model,
		loader: loader,
		opts:   opts,
		cfg:    cfg,
		dim:    dim,
		params: make([]float64, dim),
		xhat:   make([]float64, dim),
		s:      make([]float64, dim),
		qSelf:  make([]float64, dim),
	}, nil
}

// ID implements core.Node.
func (n *Node) ID() int { return n.id }

// LocalStepCount reports tau; the simulation's time model uses it.
func (n *Node) LocalStepCount() int { return n.opts.LocalSteps }

// Model implements core.Node.
func (n *Node) Model() nn.Trainable { return n.model }

// LocalTrain implements core.Node.
func (n *Node) LocalTrain() float64 {
	var total float64
	for s := 0; s < n.opts.LocalSteps; s++ {
		x, y := n.loader.Next()
		total += n.model.TrainBatch(x, y, n.opts.LR)
	}
	return total / float64(n.opts.LocalSteps)
}

// Share implements core.Node: q_i = TopK(x^(t+1/2) - x̂_i) with gamma-coded
// index metadata.
func (n *Node) Share(round int) ([]byte, codec.ByteBreakdown, error) {
	n.model.CopyParams(n.params)
	diff := make([]float64, n.dim)
	for i := range diff {
		diff[i] = n.params[i] - n.xhat[i]
	}
	k := int(n.cfg.Fraction * float64(n.dim))
	if k < 1 {
		k = 1
	}
	var sv codec.SparseVector
	mode := codec.IndexGamma
	if k >= n.dim {
		mode = codec.IndexDense
		sv = codec.SparseVector{Dim: n.dim, Values: diff}
		copy(n.qSelf, diff)
	} else {
		idx := sparsify.TopKIndices(diff, k)
		sv = codec.SparseVector{Dim: n.dim, Indices: idx, Values: sparsify.Gather(diff, idx)}
		for i := range n.qSelf {
			n.qSelf[i] = 0
		}
		sparsify.Scatter(n.qSelf, idx, sv.Values)
	}
	buf, bd, err := codec.EncodeSparse(sv, mode, n.cfg.FloatCodec)
	if err != nil {
		return nil, bd, fmt.Errorf("choco: encoding payload: %w", err)
	}
	return buf, bd, nil
}

// Aggregate implements core.Node: integrate all q_j into s, update x̂, and
// apply the gossip correction.
func (n *Node) Aggregate(round int, w topology.Weights, msgs map[int][]byte) error {
	// s += w_ii q_i + Σ_j w_ij q_j. Senders are processed in increasing id
	// order for bit-reproducible accumulation.
	for i, q := range n.qSelf {
		n.s[i] += w.Self * q
	}
	senders := make([]int, 0, len(msgs))
	for from := range msgs {
		senders = append(senders, from)
	}
	sort.Ints(senders)
	for _, from := range senders {
		buf := msgs[from]
		wj, ok := w.Neighbor[from]
		if !ok {
			return fmt.Errorf("choco: payload from %d but no mixing weight", from)
		}
		sv, err := codec.DecodeSparse(buf)
		if err != nil {
			return fmt.Errorf("choco: payload from %d: %w", from, err)
		}
		if sv.Dim != n.dim {
			return fmt.Errorf("choco: payload from %d has dim %d, want %d", from, sv.Dim, n.dim)
		}
		if sv.Indices == nil {
			for i, v := range sv.Values {
				n.s[i] += wj * v
			}
		} else {
			for pos, idx := range sv.Indices {
				n.s[idx] += wj * sv.Values[pos]
			}
		}
	}
	// x̂_i += q_i.
	for i, q := range n.qSelf {
		n.xhat[i] += q
	}
	// x <- x^(t+1/2) + γ (s - x̂).
	for i := range n.params {
		n.params[i] += n.cfg.Gamma * (n.s[i] - n.xhat[i])
	}
	n.model.SetParams(n.params)
	return nil
}
