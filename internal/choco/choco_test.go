package choco

import (
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/topology"
	"repro/internal/vec"
)

type stubModel struct {
	params []float64
}

func (s *stubModel) ParamCount() int                                   { return len(s.params) }
func (s *stubModel) CopyParams(dst []float64)                          { copy(dst, s.params) }
func (s *stubModel) SetParams(src []float64)                           { copy(s.params, src) }
func (s *stubModel) TrainBatch(*nn.Tensor, []float64, float64) float64 { return 0 }
func (s *stubModel) EvalBatch(*nn.Tensor, []float64) (float64, int, int) {
	return 0, 0, 1
}

func testLoader(t *testing.T) *datasets.Loader {
	t.Helper()
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 2, Channels: 1, Height: 4, Width: 4, TrainPerClass: 4, TestPerClass: 2,
	}, vec.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return datasets.NewLoader(ds, []int{0, 1, 2, 3}, 2, vec.NewRNG(2))
}

func TestConfigValidation(t *testing.T) {
	model := &stubModel{params: make([]float64, 8)}
	loader := testLoader(t)
	opts := core.TrainOpts{LR: 0.1, LocalSteps: 1}
	if _, err := New(0, model, loader, opts, Config{Fraction: 0, Gamma: 0.5}); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := New(0, model, loader, opts, Config{Fraction: 0.2, Gamma: 0}); err == nil {
		t.Fatal("zero gamma accepted")
	}
	if _, err := New(0, model, loader, core.TrainOpts{}, Config{Fraction: 0.2, Gamma: 0.5}); err == nil {
		t.Fatal("invalid train opts accepted")
	}
}

// TestChocoConsensus: with no training and full compression (fraction 1,
// gamma 1), CHOCO reduces to exact gossip averaging and must reach consensus
// at the uniform average on a regular graph.
func TestChocoConsensus(t *testing.T) {
	rng := vec.NewRNG(3)
	const n = 8
	const dim = 20
	g, err := topology.Regular(n, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := topology.MetropolisHastings(g)
	var nodes []*Node
	want := make([]float64, dim)
	for i := 0; i < n; i++ {
		params := make([]float64, dim)
		for k := range params {
			params[k] = rng.NormFloat64()
			want[k] += params[k] / n
		}
		node, err := New(i, &stubModel{params: params}, testLoader(t), core.TrainOpts{LR: 0.1, LocalSteps: 1}, Config{Fraction: 1, Gamma: 1, FloatCodec: codec.Raw32{}})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	for round := 0; round < 80; round++ {
		payloads := make([][]byte, n)
		for i, node := range nodes {
			p, _, err := node.Share(round)
			if err != nil {
				t.Fatal(err)
			}
			payloads[i] = p
		}
		for i, node := range nodes {
			msgs := map[int][]byte{}
			for _, j := range g.Neighbors(i) {
				msgs[j] = payloads[j]
			}
			if err := node.Aggregate(round, w[i], msgs); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, node := range nodes {
		got := make([]float64, dim)
		node.Model().CopyParams(got)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-2 {
				t.Fatalf("node %d param %d = %v, want %v", i, k, got[k], want[k])
			}
		}
	}
}

// TestChocoSparseConsensusContracts: with 20% TopK compression and a stable
// gamma, disagreement must shrink over rounds (the error-feedback property).
// Note gamma=0.6 — the paper's tuned value for CIFAR training — diverges on
// this pure-consensus stress test, illustrating the gamma sensitivity the
// paper reports in Section IV-D; the theory-safe regime is much smaller.
func TestChocoSparseConsensusContracts(t *testing.T) {
	rng := vec.NewRNG(4)
	const n = 6
	const dim = 50
	g, err := topology.Regular(n, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := topology.MetropolisHastings(g)
	var nodes []*Node
	for i := 0; i < n; i++ {
		params := make([]float64, dim)
		for k := range params {
			params[k] = rng.NormFloat64() * 2
		}
		node, err := New(i, &stubModel{params: params}, testLoader(t), core.TrainOpts{LR: 0.1, LocalSteps: 1}, Config{Fraction: 0.2, Gamma: 0.25, FloatCodec: codec.Raw32{}})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	spread := func() float64 {
		var worst float64
		for k := 0; k < dim; k++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, node := range nodes {
				p := make([]float64, dim)
				node.Model().CopyParams(p)
				lo = math.Min(lo, p[k])
				hi = math.Max(hi, p[k])
			}
			worst = math.Max(worst, hi-lo)
		}
		return worst
	}
	before := spread()
	for round := 0; round < 400; round++ {
		payloads := make([][]byte, n)
		for i, node := range nodes {
			p, _, err := node.Share(round)
			if err != nil {
				t.Fatal(err)
			}
			payloads[i] = p
		}
		for i, node := range nodes {
			msgs := map[int][]byte{}
			for _, j := range g.Neighbors(i) {
				msgs[j] = payloads[j]
			}
			if err := node.Aggregate(round, w[i], msgs); err != nil {
				t.Fatal(err)
			}
		}
	}
	after := spread()
	if after > before/4 {
		t.Fatalf("CHOCO disagreement did not contract: %v -> %v", before, after)
	}
}

func TestChocoPayloadBudget(t *testing.T) {
	dim := 1000
	node, err := New(0, &stubModel{params: make([]float64, dim)}, testLoader(t), core.TrainOpts{LR: 0.1, LocalSteps: 1}, Config{Fraction: 0.1, Gamma: 0.5, FloatCodec: codec.Raw32{}})
	if err != nil {
		t.Fatal(err)
	}
	_, bd, err := node.Share(0)
	if err != nil {
		t.Fatal(err)
	}
	// 10% of 1000 params = 100 float32 values = 400 bytes of model payload.
	if bd.Model != 400 {
		t.Fatalf("model bytes = %d, want 400", bd.Model)
	}
}

func TestChocoRejectsUnknownSender(t *testing.T) {
	node, err := New(0, &stubModel{params: make([]float64, 8)}, testLoader(t), core.TrainOpts{LR: 0.1, LocalSteps: 1}, Config{Fraction: 0.5, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := node.Share(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Aggregate(0, topology.Weights{Self: 1, Neighbor: map[int]float64{}}, map[int][]byte{9: p}); err == nil {
		t.Fatal("expected error for unknown sender")
	}
}
