// Tracereplay: record, persist, and replay an async schedule. A JWINS run
// with stragglers and churn executes under the event-driven scheduler with a
// trace recorder attached; the trace round-trips through the on-disk JSONL
// format; and a second engine replays it as the authoritative schedule. The
// demo then proves the sim-to-real property the trace subsystem exists for:
// the replayed run reproduces the original event for event and byte for
// byte, so a schedule captured on a real cluster (see cmd/jwins-node) can be
// re-costed through the simulator the same way.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/simulation"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 7

	// 1. Record: the micro CIFAR-10-like workload through the async engine,
	// with a straggler tail and 25% churn shaping the schedule.
	w, err := experiments.NewWorkload("cifar10", experiments.Micro, 0, seed)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(experiments.TraceHeaderFor(w, experiments.AlgoJWINS, 0, seed, false, false, 0))
	recorded, err := experiments.Run(experiments.RunSpec{
		Workload: w, Algo: experiments.AlgoSpec{Kind: experiments.AlgoJWINS},
		Seed: seed, Async: true,
		Het:           simulation.Heterogeneity{ComputeSpread: 0.6, BandwidthSpread: 0.3},
		ChurnFraction: 0.25,
		Recorder:      rec,
	})
	if err != nil {
		return err
	}
	fmt.Printf("recorded: %d nodes, %d rows, %d events, %.1f%% accuracy, %.2fs simulated\n",
		w.Nodes, len(recorded.Rounds), rec.Len(), recorded.FinalAccuracy*100, recorded.SimTime)

	// 2. Persist and reload: the replay works from what survives the wire.
	path := filepath.Join(os.TempDir(), "tracereplay.jsonl")
	if err := trace.WriteFile(path, rec.Trace()); err != nil {
		return err
	}
	defer os.Remove(path)
	reloaded, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	stats := trace.ComputeStats(reloaded)
	fmt.Printf("persisted %s and read it back:\n%s", path, stats)

	// 3. Replay: the trace is the authoritative schedule; heterogeneity and
	// churn knobs are ignored in favour of the recorded times.
	replayRes, replayedTrace, err := experiments.ReplayTrace(reloaded)
	if err != nil {
		return err
	}
	diff := trace.Compare(replayedTrace, reloaded)
	fmt.Printf("replayed: %d rows, %.1f%% accuracy, %.2fs simulated\n",
		len(replayRes.Rounds), replayRes.FinalAccuracy*100, replayRes.SimTime)
	fmt.Printf("parity: %d/%d events matched, time err max %.6fs, byte delta %d\n",
		diff.Matched, stats.Events, diff.TimeErrMax, diff.BytesA-diff.BytesB)
	if diff.InSync() && diff.TimeErrMax == 0 && replayRes.TotalBytes == recorded.TotalBytes {
		fmt.Println("the replay reproduced the recorded schedule exactly.")
	} else {
		return fmt.Errorf("replay diverged from the recording: %+v", diff)
	}
	return nil
}
