// Asyncchurn: 16 JWINS nodes train through the event-driven scheduler on
// heterogeneous hardware while a quarter of them leave and rejoin mid-run.
// The demo prints the churn trace, a live event ticker, and the learning
// curve, showing that partial-sharing averaging keeps converging while the
// active subgraph shrinks and grows — the paper's "flexible to nodes leaving
// and joining" claim under realistic stragglers instead of coin flips.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/simulation"
	"repro/internal/topology"
	"repro/internal/vec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		nodes  = 16
		degree = 4
		rounds = 30
		seed   = 7
	)

	// 1. The quickstart's non-IID image task, two label shards per node.
	root := vec.NewRNG(seed)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Channels: 1, Height: 8, Width: 8,
		TrainPerClass: 40, TestPerClass: 10,
	}, root)
	if err != nil {
		return err
	}
	parts, err := datasets.PartitionShards(ds, nodes, 2, root)
	if err != nil {
		return err
	}
	graph, err := topology.Regular(nodes, degree, root)
	if err != nil {
		return err
	}

	// 2. A JWINS fleet from shared initial weights.
	fleet, err := buildFleet(ds, parts, seed)
	if err != nil {
		return err
	}

	// 3. Heterogeneous hardware (lognormal straggler tail) and a seeded churn
	// trace: 25% of the nodes go away for a while and come back.
	churn := simulation.GenerateChurn(nodes, 0.25, 0.1, 0.6, 0.15, seed)
	fmt.Println("churn trace:")
	for _, ev := range churn {
		what := "leaves"
		if ev.Join {
			what = "rejoins"
		}
		fmt.Printf("  t=%6.2fs node %2d %s\n", ev.Time, ev.Node, what)
	}

	var churnEvents int
	engine := &simulation.AsyncEngine{
		Nodes:    fleet,
		Topology: topology.NewStatic(graph),
		TestSet:  ds,
		Config: simulation.AsyncConfig{
			Config: simulation.Config{Rounds: rounds, EvalEvery: 5},
			Het: simulation.Heterogeneity{
				ComputeSpread:   0.6,
				BandwidthSpread: 0.3,
				Seed:            seed,
			},
			Churn: churn,
			OnEvent: func(ev simulation.Event) {
				if ev.Kind == simulation.EventLeave || ev.Kind == simulation.EventJoin {
					churnEvents++
				}
			},
		},
		OnRound: func(rm simulation.RoundMetrics) {
			if !math.IsNaN(rm.TestAcc) {
				fmt.Printf("iter %3d  t=%6.2fs  train-loss %.3f  test-acc %5.1f%%  sent %6.1f KiB\n",
					rm.Round+1, rm.SimTime, rm.TrainLoss, rm.TestAcc*100,
					float64(rm.CumTotalBytes)/1024)
			}
		},
	}
	res, err := engine.Run()
	if err != nil {
		return err
	}

	fmt.Printf("\nprocessed %d churn events; final accuracy %.1f%% after %.1fs simulated (%d/%d rows)\n",
		churnEvents, res.FinalAccuracy*100, res.SimTime, len(res.Rounds), rounds)
	fmt.Println("JWINS keeps converging while the active subgraph shrinks and grows.")
	return nil
}

// buildFleet creates one JWINS node per partition from shared initial weights.
func buildFleet(ds *datasets.Dataset, parts [][]int, seed uint64) ([]core.Node, error) {
	root := vec.NewRNG(seed + 100)
	template := nn.NewMLP(64, 32, 4, root.Split())
	initial := make([]float64, template.ParamCount())
	template.CopyParams(initial)

	opts := core.TrainOpts{LR: 0.05, LocalSteps: 2}
	fleet := make([]core.Node, 0, len(parts))
	for i := range parts {
		nodeRNG := root.Split()
		model := nn.NewMLP(64, 32, 4, nodeRNG)
		model.SetParams(initial)
		loader := datasets.NewLoader(ds, parts[i], 8, nodeRNG.Split())
		node, err := core.NewJWINS(i, model, loader, opts, core.DefaultJWINSConfig(), nodeRNG.Split())
		if err != nil {
			return nil, err
		}
		fleet = append(fleet, node)
	}
	return fleet, nil
}
