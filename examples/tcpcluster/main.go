// Tcpcluster: JWINS over real TCP sockets. Each decentralized node runs in
// its own goroutine with its own TCP endpoint on localhost (standing in for
// the paper's ZeroMQ mesh across machines); payloads travel through actual
// length-prefixed socket frames rather than the in-memory simulator. The
// example verifies that the byte counts on the wire match the encoder's
// accounting and that learning proceeds normally.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/vec"
)

const (
	nodes  = 4
	rounds = 20
	seed   = 5
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	root := vec.NewRNG(seed)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Channels: 1, Height: 8, Width: 8,
		TrainPerClass: 30, TestPerClass: 8,
	}, root)
	if err != nil {
		return err
	}
	parts, err := datasets.PartitionShards(ds, nodes, 2, root)
	if err != nil {
		return err
	}
	graph := topology.Ring(nodes)
	weights := topology.MetropolisHastings(graph)

	// Start one TCP endpoint per node on an ephemeral port, then exchange
	// the bound addresses (a static "membership service").
	addrs := make([]string, nodes)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	endpoints := make([]*transport.TCP, nodes)
	for i := range endpoints {
		ep, err := transport.NewTCP(i, addrs)
		if err != nil {
			return err
		}
		defer ep.Close()
		endpoints[i] = ep
	}
	for i, epi := range endpoints {
		for j, epj := range endpoints {
			epi.SetPeerAddr(j, epj.Addr())
		}
		_ = i
	}

	// Build the fleet: identical initial weights, JWINS on every node.
	fleetRoot := vec.NewRNG(seed + 20)
	template := nn.NewMLP(64, 24, 4, fleetRoot.Split())
	initial := make([]float64, template.ParamCount())
	template.CopyParams(initial)
	opts := core.TrainOpts{LR: 0.05, LocalSteps: 2}
	fleet := make([]*core.JWINSNode, nodes)
	for i := 0; i < nodes; i++ {
		nodeRNG := fleetRoot.Split()
		model := nn.NewMLP(64, 24, 4, nodeRNG)
		model.SetParams(initial)
		loader := datasets.NewLoader(ds, parts[i], 8, nodeRNG.Split())
		node, err := core.NewJWINS(i, model, loader, opts, core.DefaultJWINSConfig(), nodeRNG.Split())
		if err != nil {
			return err
		}
		fleet[i] = node
	}

	fmt.Printf("running %d JWINS nodes over TCP (%d rounds)...\n", nodes, rounds)
	// Every node runs its own round loop: train, broadcast over TCP, collect
	// its neighbors' payloads, aggregate. Rounds are synchronized by message
	// counting (each node knows its degree).
	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := fleet[i]
			ep := endpoints[i]
			// Neighbors can run at most one round ahead (they block on our
			// payload before advancing further), so early messages are
			// buffered per round rather than dropped.
			pending := map[int]map[int][]byte{}
			for r := 0; r < rounds; r++ {
				node.LocalTrain()
				payload, _, err := node.Share(r)
				if err != nil {
					errs <- fmt.Errorf("node %d: %w", i, err)
					return
				}
				for _, j := range graph.Neighbors(i) {
					if err := ep.Send(transport.Message{From: i, To: j, Round: r, Payload: payload}); err != nil {
						errs <- fmt.Errorf("node %d send: %w", i, err)
						return
					}
				}
				inbox := pending[r]
				if inbox == nil {
					inbox = map[int][]byte{}
				}
				delete(pending, r)
				for len(inbox) < graph.Degree(i) {
					msg, err := ep.Recv(i)
					if err != nil {
						errs <- fmt.Errorf("node %d recv: %w", i, err)
						return
					}
					if msg.Round == r {
						inbox[msg.From] = msg.Payload
					} else {
						if pending[msg.Round] == nil {
							pending[msg.Round] = map[int][]byte{}
						}
						pending[msg.Round][msg.From] = msg.Payload
					}
				}
				if err := node.Aggregate(r, weights[i], inbox); err != nil {
					errs <- fmt.Errorf("node %d aggregate: %w", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	// Evaluate each node's model and report wire bytes.
	var acc float64
	for _, node := range fleet {
		_, a := datasets.Evaluate(ds, node.Model(), 16, 0)
		acc += a / nodes
	}
	var wire int64
	for i, ep := range endpoints {
		wire += ep.SentBytes(i)
	}
	fmt.Printf("mean accuracy after %d rounds: %.1f%% (chance 25%%)\n", rounds, acc*100)
	fmt.Printf("bytes on the wire (all nodes): %s\n", experiments.FormatBytes(wire))
	return nil
}
