// Dyntopo: 96 JWINS nodes train through the event-driven scheduler while the
// random regular communication graph re-randomizes every simulated-time
// epoch. The demo prints a rotation ticker with each epoch's spectral gap
// and neighbor turnover, records the executed schedule as a trace, and
// replays it to show that rotated runs keep the engine's exact
// record→replay parity — the property that makes dynamic-topology cluster
// traces re-costable through the simulator.
//
// Why rotate at all: any one sparse graph mixes slowly (its spectral gap
// shrinks as the fleet grows), but a *fresh* random regular graph each epoch
// behaves like an expander on average, so parameter information reaches the
// whole fleet in far fewer iterations. Compare the static arm's gap printed
// at the end with the per-epoch gaps of the rotated run.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/simulation"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/vec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		nodes    = 96
		degree   = 4
		rounds   = 8
		seed     = 7
		epochSec = 0.05 // ~2 iterations per epoch under the default time model
	)

	// 1. A non-IID image task sharded over 96 nodes (tiny per-node models so
	// the demo runs in seconds).
	root := vec.NewRNG(seed)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Channels: 1, Height: 8, Width: 8,
		TrainPerClass: 4 * nodes, TestPerClass: nodes,
	}, root)
	if err != nil {
		return err
	}
	parts, err := datasets.PartitionShards(ds, nodes, 2, root)
	if err != nil {
		return err
	}
	fleet, err := buildFleet(ds, parts, seed)
	if err != nil {
		return err
	}

	// 2. The epoch-rotated topology: a deterministic random-access d-regular
	// generator wrapped in an EpochProvider. Every epochSec of simulated
	// time, the engine processes a topology-change event, new edges exchange
	// cached state, and the mixing metrics refresh.
	provider := topology.NewEpochProvider(
		topology.NewSeededDynamic(nodes, degree, seed), nodes, epochSec)

	// 3. Run with a straggler tail and some churn, recording the schedule.
	rec := trace.NewRecorder(trace.Header{
		Nodes: nodes, Rounds: rounds, Source: trace.SourceSim, Policy: trace.PolicyBarrier,
		Meta: map[string]string{"epoch_sec": fmt.Sprint(epochSec)},
	})
	engine := &simulation.AsyncEngine{
		Nodes:    fleet,
		Topology: provider,
		TestSet:  ds,
		Config: simulation.AsyncConfig{
			Config: simulation.Config{Rounds: rounds, EvalEvery: 4, EvalNodes: 8},
			Het:    simulation.Heterogeneity{ComputeSpread: 0.4, Seed: seed},
			Churn:  simulation.GenerateChurn(nodes, 0.1, 0.05, 0.2, 0.05, seed),
			Record: rec,
		},
		OnRound: func(rm simulation.RoundMetrics) {
			if !math.IsNaN(rm.TestAcc) {
				fmt.Printf("iter %2d  t=%5.2fs  epoch %2d  gap %.4f  turnover %.2f  acc %5.1f%%\n",
					rm.Round+1, rm.SimTime, rm.Epoch, rm.SpectralGap, rm.NeighborTurnover, rm.TestAcc*100)
			}
		},
	}
	res, err := engine.Run()
	if err != nil {
		return err
	}
	fmt.Printf("\nrotated run: %d epochs, spectral gap mean %.4f (min %.4f), turnover %.2f, %.1f%% accuracy\n",
		res.Epochs, res.SpectralGapMean, res.SpectralGapMin, res.TurnoverMean, res.FinalAccuracy*100)

	// 4. Replay the recorded schedule: rotated runs stay event- and
	// byte-identical, topology changes included.
	rp, err := trace.NewReplayer(rec.Trace())
	if err != nil {
		return err
	}
	rec2 := trace.NewRecorder(rec.Trace().Header)
	fleet2, err := buildFleet(ds, parts, seed)
	if err != nil {
		return err
	}
	replayEngine := &simulation.AsyncEngine{
		Nodes: fleet2,
		Topology: topology.NewEpochProvider(
			topology.NewSeededDynamic(nodes, degree, seed), nodes, epochSec),
		TestSet: ds,
		Config: simulation.AsyncConfig{
			Config: simulation.Config{Rounds: rounds, EvalEvery: 4, EvalNodes: 8},
			Replay: rp,
			Record: rec2,
		},
	}
	repRes, err := replayEngine.Run()
	if err != nil {
		return err
	}
	diff := trace.Compare(rec2.Trace(), rec.Trace())
	fmt.Printf("replay: %d events, in sync %v (max time error %.6fs), ledger delta %d bytes\n",
		rec2.Len(), diff.InSync(), diff.TimeErrMax, repRes.TotalBytes-res.TotalBytes)

	// 5. The static reference: same fleet seed, one pinned graph. Its single
	// spectral gap is what the rotation buys its way out of.
	fleet3, err := buildFleet(ds, parts, seed)
	if err != nil {
		return err
	}
	g, _ := topology.NewSeededDynamic(nodes, degree, seed).Round(0)
	staticRes, err := (&simulation.AsyncEngine{
		Nodes:    fleet3,
		Topology: topology.NewStatic(g),
		TestSet:  ds,
		Config: simulation.AsyncConfig{
			Config: simulation.Config{Rounds: rounds, EvalEvery: 4, EvalNodes: 8},
			Het:    simulation.Heterogeneity{ComputeSpread: 0.4, Seed: seed},
		},
	}).Run()
	if err != nil {
		return err
	}
	fmt.Printf("static reference: spectral gap %.4f, %.1f%% accuracy\n",
		staticRes.SpectralGapMean, staticRes.FinalAccuracy*100)
	return nil
}

// buildFleet creates one JWINS node per partition from shared initial weights.
func buildFleet(ds *datasets.Dataset, parts [][]int, seed uint64) ([]core.Node, error) {
	root := vec.NewRNG(seed + 100)
	template := nn.NewMLP(64, 24, 4, root.Split())
	initial := make([]float64, template.ParamCount())
	template.CopyParams(initial)

	opts := core.TrainOpts{LR: 0.05, LocalSteps: 2}
	fleet := make([]core.Node, 0, len(parts))
	for i := range parts {
		nodeRNG := root.Split()
		model := nn.NewMLP(64, 24, 4, nodeRNG)
		model.SetParams(initial)
		loader := datasets.NewLoader(ds, parts[i], 8, nodeRNG.Split())
		node, err := core.NewJWINS(i, model, loader, opts, core.DefaultJWINSConfig(), nodeRNG.Split())
		if err != nil {
			return nil, err
		}
		fleet = append(fleet, node)
	}
	return fleet, nil
}
