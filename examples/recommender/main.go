// Recommender: decentralized matrix factorization over JWINS, the paper's
// MovieLens scenario. A federation of nodes, each holding the ratings of a
// few users, jointly learns user/item embeddings without centralizing any
// ratings, under a tight communication budget (the 20% alpha distribution).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/choco"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/simulation"
	"repro/internal/topology"
	"repro/internal/vec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		nodes  = 8
		users  = 32 // 4 users per node
		items  = 120
		rounds = 60
		seed   = 7
	)
	root := vec.NewRNG(seed)
	ds, err := datasets.MovieLensLike(datasets.RatingConfig{
		Users: users, Items: items, TrainPerUser: 20, TestPerUser: 5,
	}, root)
	if err != nil {
		return err
	}
	// One client = one user; each node hosts a few whole users.
	parts, err := datasets.PartitionByClient(ds, nodes, root)
	if err != nil {
		return err
	}
	graph, err := topology.Regular(nodes, 4, root)
	if err != nil {
		return err
	}

	budget, err := core.BudgetAlphas(0.20)
	if err != nil {
		return err
	}

	type arm struct {
		name  string
		build func(i int, m nn.Trainable, l *datasets.Loader, rng *vec.RNG) (core.Node, error)
	}
	opts := core.TrainOpts{LR: 0.05, LocalSteps: 2}
	arms := []arm{
		{"full-sharing", func(i int, m nn.Trainable, l *datasets.Loader, rng *vec.RNG) (core.Node, error) {
			return core.NewFullSharing(i, m, l, opts, nil)
		}},
		{"jwins @20% budget", func(i int, m nn.Trainable, l *datasets.Loader, rng *vec.RNG) (core.Node, error) {
			cfg := core.DefaultJWINSConfig()
			cfg.Alphas = budget
			return core.NewJWINS(i, m, l, opts, cfg, rng)
		}},
		{"choco @20% budget", func(i int, m nn.Trainable, l *datasets.Loader, rng *vec.RNG) (core.Node, error) {
			return choco.New(i, m, l, opts, choco.Config{Fraction: 0.2, Gamma: 0.4})
		}},
	}

	fmt.Printf("decentralized recommendation: %d nodes, %d users, %d items, %d rounds\n\n",
		nodes, users, items, rounds)
	for _, a := range arms {
		fleetRoot := vec.NewRNG(seed + 55)
		template := nn.NewMatrixFactorization(users, items, 8, fleetRoot.Split())
		initial := make([]float64, template.ParamCount())
		template.CopyParams(initial)

		fleet := make([]core.Node, 0, nodes)
		for i := 0; i < nodes; i++ {
			nodeRNG := fleetRoot.Split()
			model := nn.NewMatrixFactorization(users, items, 8, nodeRNG)
			model.SetParams(initial)
			loader := datasets.NewLoader(ds, parts[i], 16, nodeRNG.Split())
			node, err := a.build(i, model, loader, nodeRNG.Split())
			if err != nil {
				return err
			}
			fleet = append(fleet, node)
		}
		engine := &simulation.Engine{
			Nodes:    fleet,
			Topology: topology.NewStatic(graph),
			TestSet:  ds,
			Config:   simulation.Config{Rounds: rounds, EvalEvery: 20},
		}
		res, err := engine.Run()
		if err != nil {
			return err
		}
		rmse := math.Sqrt(res.FinalLoss)
		fmt.Printf("%-18s rating RMSE %.3f  within-half-star %5.1f%%  sent %10s\n",
			a.name, rmse, res.FinalAccuracy*100, experiments.FormatBytes(res.TotalBytes))
	}
	return nil
}
