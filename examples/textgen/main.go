// Textgen: decentralized next-character language modelling with a stacked
// LSTM over JWINS — the paper's Shakespeare task. Each node holds the text of
// a few "roles" (clients); after training, the example samples text from one
// node's model to show the collaboratively learned language model at work.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/simulation"
	"repro/internal/topology"
	"repro/internal/vec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const (
	nodes  = 6
	seqLen = 24
	rounds = 40
	seed   = 3
)

func run() error {
	root := vec.NewRNG(seed)
	ds, err := datasets.ShakespeareLike(datasets.TextConfig{
		SeqLen: seqLen, Clients: nodes, WindowsPerClient: 48,
	}, root)
	if err != nil {
		return err
	}
	parts, err := datasets.PartitionByClient(ds, nodes, root)
	if err != nil {
		return err
	}
	graph, err := topology.Regular(nodes, 4, root)
	if err != nil {
		return err
	}

	vocab := ds.Classes
	newModel := func(rng *vec.RNG) *nn.Classifier {
		return nn.NewCharLSTM(nn.CharLSTMConfig{Vocab: vocab, Embed: 8, Hidden: 32, Layers: 2}, rng)
	}

	fleetRoot := vec.NewRNG(seed + 9)
	template := newModel(fleetRoot.Split())
	initial := make([]float64, template.ParamCount())
	template.CopyParams(initial)

	opts := core.TrainOpts{LR: 0.3, LocalSteps: 2}
	fleet := make([]core.Node, 0, nodes)
	models := make([]*nn.Classifier, 0, nodes)
	for i := 0; i < nodes; i++ {
		nodeRNG := fleetRoot.Split()
		model := newModel(nodeRNG)
		model.SetParams(initial)
		models = append(models, model)
		loader := datasets.NewLoader(ds, parts[i], 8, nodeRNG.Split())
		node, err := core.NewJWINS(i, model, loader, opts, core.DefaultJWINSConfig(), nodeRNG.Split())
		if err != nil {
			return err
		}
		fleet = append(fleet, node)
	}

	fmt.Printf("training a %d-parameter stacked LSTM on %d nodes (vocab %d)...\n",
		template.ParamCount(), nodes, vocab)
	engine := &simulation.Engine{
		Nodes:    fleet,
		Topology: topology.NewStatic(graph),
		TestSet:  ds,
		Config:   simulation.Config{Rounds: rounds, EvalEvery: 10},
	}
	res, err := engine.Run()
	if err != nil {
		return err
	}
	fmt.Printf("next-char accuracy %.1f%% (chance %.1f%%), %s sent\n\n",
		res.FinalAccuracy*100, 100.0/float64(vocab), experiments.FormatBytes(res.TotalBytes))

	// Sample text from node 0's model, seeded with a corpus prefix.
	fmt.Println("sampled text from node 0's model:")
	fmt.Printf("  %q\n", sample(models[0], ds, 120, vec.NewRNG(99)))
	return nil
}

// sample autoregressively generates n characters from the model.
func sample(model *nn.Classifier, ds *datasets.Dataset, n int, rng *vec.RNG) string {
	alphabet := corpusAlphabet(ds)
	window := make([]float64, len(ds.Test[0].X))
	copy(window, ds.Test[0].X)
	var out strings.Builder
	for i := 0; i < n; i++ {
		x := nn.FromData(append([]float64(nil), window...), 1, len(window))
		logits := model.Net.Forward(x, false)
		t := logits.Shape[1]
		vocab := logits.Shape[2]
		last := logits.Data[(t-1)*vocab : t*vocab]
		next := sampleSoftmax(last, 0.7, rng)
		out.WriteRune(alphabet[next])
		copy(window, window[1:])
		window[len(window)-1] = float64(next)
	}
	return out.String()
}

// corpusAlphabet recovers the id -> rune mapping (ids are assigned in sorted
// rune order by the generator).
func corpusAlphabet(ds *datasets.Dataset) []rune {
	seen := map[int]bool{}
	for _, s := range ds.Train {
		for _, v := range s.X {
			seen[int(v)] = true
		}
	}
	// The generator assigns ids by sorted rune order over a lowercase corpus;
	// reconstruct a printable alphabet of the right size. For display
	// purposes we map ids onto the known corpus alphabet.
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	known := []rune("\n abcdefghijklmnopqrstuvwxyz")
	out := make([]rune, ds.Classes)
	for i := range out {
		if i < len(known) {
			out[i] = known[i]
		} else {
			out[i] = '?'
		}
	}
	return out
}

func sampleSoftmax(logits []float64, temperature float64, rng *vec.RNG) int {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	probs := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		probs[i] = math.Exp((v - maxv) / temperature)
		sum += probs[i]
	}
	u := rng.Float64() * sum
	var cum float64
	for i, p := range probs {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(probs) - 1
}
