// Quickstart: 8 nodes collaboratively train an image classifier on a
// non-IID split, comparing JWINS against full-sharing D-PSGD. This is the
// smallest end-to-end use of the library's public surface: build a dataset,
// partition it, construct per-node models and algorithms, wire a topology,
// and drive rounds with the simulation engine.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/nn"
	"repro/internal/simulation"
	"repro/internal/topology"
	"repro/internal/vec"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		nodes  = 8
		degree = 4
		rounds = 30
		seed   = 1
	)

	// 1. A 4-class synthetic image task, split non-IID: every node gets two
	// label shards, so it sees at most ~2 of the 4 classes locally.
	root := vec.NewRNG(seed)
	ds, err := datasets.SyntheticImages(datasets.ImageConfig{
		Classes: 4, Channels: 1, Height: 8, Width: 8,
		TrainPerClass: 40, TestPerClass: 10,
	}, root)
	if err != nil {
		return err
	}
	parts, err := datasets.PartitionShards(ds, nodes, 2, root)
	if err != nil {
		return err
	}

	// 2. A communication topology with Metropolis-Hastings mixing weights.
	graph, err := topology.Regular(nodes, degree, root)
	if err != nil {
		return err
	}

	// 3. Two fleets over identical data and initial weights: one exchanging
	// full models every round, one running JWINS.
	for _, algo := range []string{"full-sharing", "jwins"} {
		fleet, err := buildFleet(algo, ds, parts, seed)
		if err != nil {
			return err
		}
		engine := &simulation.Engine{
			Nodes:    fleet,
			Topology: topology.NewStatic(graph),
			TestSet:  ds,
			Config:   simulation.Config{Rounds: rounds, EvalEvery: 10},
		}
		res, err := engine.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-13s accuracy %5.1f%%  bytes sent %8.1f KiB  (metadata %.1f KiB)\n",
			algo, res.FinalAccuracy*100,
			float64(res.TotalBytes)/1024, float64(res.MetaBytes)/1024)
	}
	fmt.Println("JWINS should match full-sharing accuracy at a fraction of the bytes.")
	return nil
}

// buildFleet creates one node per partition, all starting from the same
// initial weights.
func buildFleet(algo string, ds *datasets.Dataset, parts [][]int, seed uint64) ([]core.Node, error) {
	root := vec.NewRNG(seed + 100)
	template := nn.NewMLP(64, 32, 4, root.Split())
	initial := make([]float64, template.ParamCount())
	template.CopyParams(initial)

	opts := core.TrainOpts{LR: 0.05, LocalSteps: 2}
	fleet := make([]core.Node, 0, len(parts))
	for i := range parts {
		nodeRNG := root.Split()
		model := nn.NewMLP(64, 32, 4, nodeRNG)
		model.SetParams(initial)
		loader := datasets.NewLoader(ds, parts[i], 8, nodeRNG.Split())

		var (
			node core.Node
			err  error
		)
		if algo == "jwins" {
			node, err = core.NewJWINS(i, model, loader, opts, core.DefaultJWINSConfig(), nodeRNG.Split())
		} else {
			node, err = core.NewFullSharing(i, model, loader, opts, nil)
		}
		if err != nil {
			return nil, err
		}
		fleet = append(fleet, node)
	}
	return fleet, nil
}
