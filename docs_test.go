// docs_test.go is the repository's markdown link check: every relative link
// or image in a committed markdown file must point at a file or directory
// that exists, and reference-style links must have a matching definition.
// CI runs it as the docs job; it also rides along in `go test ./...` so a
// renamed package or example breaks loudly.
package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownFiles returns the repo's committed .md files, skipping generated
// or vendored trees (none today, but the filter keeps the test future-proof).
func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		name := info.Name()
		if info.IsDir() {
			if strings.HasPrefix(name, ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	return files
}

var (
	// [text](target) and ![alt](target); target up to the first ')' or space
	// (titles after a space are allowed by markdown).
	inlineLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)
	// [text][ref] and the shortcut [ref][]; definitions are `[ref]: target`.
	refLink = regexp.MustCompile(`\[[^\]]+\]\[([^\]]*)\]`)
	refDef  = regexp.MustCompile(`(?m)^\[([^\]]+)\]:\s+(\S+)`)
	// fenced code blocks are stripped before link extraction.
	codeFence = regexp.MustCompile("(?s)```.*?```|`[^`\n]*`")
)

func isExternal(target string) bool {
	return strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#")
}

// TestMarkdownLinks verifies every relative link target resolves to an
// existing file or directory, and every reference-style link has a
// definition.
func TestMarkdownLinks(t *testing.T) {
	for _, file := range markdownFiles(t) {
		file := file
		t.Run(file, func(t *testing.T) {
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			content := codeFence.ReplaceAllString(string(raw), "")
			dir := filepath.Dir(file)

			defs := map[string]string{}
			for _, m := range refDef.FindAllStringSubmatch(content, -1) {
				defs[strings.ToLower(m[1])] = m[2]
			}
			var targets []string
			for _, m := range inlineLink.FindAllStringSubmatch(content, -1) {
				targets = append(targets, m[1])
			}
			for _, m := range refLink.FindAllStringSubmatch(content, -1) {
				ref := strings.ToLower(m[1])
				if ref == "" {
					continue // shortcut refs reuse the link text; rare, skip
				}
				tgt, ok := defs[ref]
				if !ok {
					t.Errorf("%s: reference link [%s] has no definition", file, m[1])
					continue
				}
				targets = append(targets, tgt)
			}
			for _, tgt := range defs {
				targets = append(targets, tgt)
			}

			for _, target := range targets {
				if isExternal(target) {
					continue
				}
				// Strip anchors; empty path means a same-file anchor.
				path := target
				if i := strings.IndexByte(path, '#'); i >= 0 {
					path = path[:i]
				}
				if path == "" {
					continue
				}
				if _, err := os.Stat(filepath.Join(dir, path)); err != nil {
					t.Errorf("%s: broken link %q (%v)", file, target, err)
				}
			}
		})
	}
}

// TestMarkdownLint enforces the repo's two structural conventions: every
// markdown file opens with a heading, and fenced code blocks are balanced
// (an odd number of ``` fences swallows the rest of the file when rendered).
func TestMarkdownLint(t *testing.T) {
	for _, file := range markdownFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		content := string(raw)
		// CHANGES.md is an append-only log of one line per PR, not a document.
		if filepath.Base(file) != "CHANGES.md" {
			firstLine := content
			if i := strings.IndexByte(content, '\n'); i >= 0 {
				firstLine = content[:i]
			}
			if !strings.HasPrefix(strings.TrimSpace(firstLine), "#") {
				t.Errorf("%s: first line is not a heading: %q", file, firstLine)
			}
		}
		if n := strings.Count(content, "```"); n%2 != 0 {
			t.Errorf("%s: unbalanced code fences (%d ``` markers)", file, n)
		}
	}
}
